//! Interpreted vs compiled inference on the scenario-sized design
//! matrix (2000×283), for both model families. Besides the Criterion
//! timings, the median of each engine's batch predict is recorded to
//! `results/BENCH_predict.json` so later PRs can regress-gate the
//! compiled engine's speedup without re-running Criterion.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c100_bench::dataset::{synthetic_regression, wrap_artifact};
use c100_bench::{bench_env_json, write_bench_record};
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::tree::MaxFeatures;
use c100_store::{BatchPredictor, Engine, ModelPayload};

const ROWS: usize = 2000;
const FEATURES: usize = 283;

/// Median of five manual timings, independent of Criterion's own
/// sampling (the recorded JSON must not depend on sampler settings).
fn median_predict_secs(mut predict: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            predict();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[2]
}

/// Both engines over both families. The ensembles mirror what the
/// pipeline serves: histogram-trained (the default split method), RF at
/// the grid's depth-8 ceiling and GBDT at its depth-5 ceiling.
fn bench_engines(c: &mut Criterion) {
    let (x, y) = synthetic_regression(ROWS, FEATURES, 7);
    let rf = RandomForestConfig {
        n_estimators: 50,
        max_depth: Some(8),
        max_features: MaxFeatures::Sqrt,
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    let gbdt = GbdtConfig {
        n_estimators: 100,
        max_depth: 5,
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();

    let mut recorded = format!(
        "{{\"bench\":\"predict_engines\",\"env\":{},\"results\":[",
        bench_env_json()
    );
    let mut first = true;
    let mut group = c.benchmark_group("predict_engines");
    for (family, payload) in [
        ("rf", ModelPayload::Rf(rf)),
        ("gbdt", ModelPayload::Gbdt(gbdt)),
    ] {
        let total_nodes = payload.total_nodes();
        let compiled_info = payload.compile();
        let artifact = wrap_artifact(payload, ROWS as u64, 7);
        let interpreted = BatchPredictor::new(artifact.clone()).with_engine(Engine::Interpreted);
        let compiled = BatchPredictor::new(artifact).with_engine(Engine::Compiled);

        // First compiled call pays the one-off flatten; run both
        // predictors once so the timed medians measure steady state,
        // and pin down that the engines agree before recording.
        let warm_i = interpreted.predict_matrix(&x).unwrap();
        let warm_c = compiled.predict_matrix(&x).unwrap();
        assert_eq!(warm_i.len(), warm_c.len());
        for (a, b) in warm_i.iter().zip(&warm_c) {
            assert_eq!(a.to_bits(), b.to_bits(), "engines must be bit-identical");
        }

        let interpreted_secs = median_predict_secs(|| {
            interpreted.predict_matrix(&x).unwrap();
        });
        let compiled_secs = median_predict_secs(|| {
            compiled.predict_matrix(&x).unwrap();
        });
        if !first {
            recorded.push(',');
        }
        first = false;
        recorded.push_str(&format!(
            "{{\"model\":\"{family}\",\"rows\":{ROWS},\"features\":{FEATURES},\
             \"total_nodes\":{total_nodes},\"quantized\":{},\
             \"interpreted_median_secs\":{interpreted_secs:.6},\
             \"compiled_median_secs\":{compiled_secs:.6},\
             \"speedup\":{:.2}}}",
            compiled_info.is_quantized() && compiled_info.quantization_pays(),
            interpreted_secs / compiled_secs
        ));

        for (engine, predictor) in [("interpreted", &interpreted), ("compiled", &compiled)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{family}_{engine}_{ROWS}x{FEATURES}")),
                predictor,
                |b, p| b.iter(|| bench_matrix(p, &x)),
            );
        }
    }
    group.finish();
    recorded.push_str("]}\n");

    let path = write_bench_record("BENCH_predict.json", &recorded);
    eprintln!("recorded engine comparison -> {}", path.display());
}

fn bench_matrix(predictor: &BatchPredictor, x: &Matrix) -> Vec<f64> {
    predictor.predict_matrix(x).unwrap()
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engines
}
criterion_main!(benches);
