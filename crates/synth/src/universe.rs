//! The simulated cryptocurrency universe: ~300 assets with churn in the
//! top-100 list, from which the Crypto100 index (and Figure 1's top-100
//! vs total market-cap comparison) is computed.
//!
//! Asset 0 is BTC itself (its cap comes from the BTC simulation). Every
//! other asset follows a market model: `cap_i(t) = base_i ·
//! exp(β_i·(log P_btc(t) − log P_btc(0)) + idio_i(t))` with Pareto base
//! caps, market betas around 1, and an idiosyncratic OU path whose
//! volatility grows as caps shrink. A share of assets launches mid-sample
//! with a small cap that mean-reverts upward, reproducing the churn of a
//! maturing market.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use c100_timeseries::Date;

use crate::btc::BtcMarket;
use crate::latent::{gaussian, LatentPaths};
use crate::SynthConfig;

/// Coarse asset category, used by sector-restricted index families.
///
/// Sectors are assigned from a seed-keyed hash of the asset index — not
/// from the shared RNG stream — so adding them left every existing cap
/// path bit-identical, and universes of different sizes agree on the
/// sector of any common asset index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sector {
    /// Pure payment / store-of-value coins (BTC is always here).
    Currency,
    /// Smart-contract platforms.
    SmartContract,
    /// Decentralized-finance protocols.
    DeFi,
    /// Exchange, oracle and scaling infrastructure.
    Infrastructure,
    /// Everything speculative and narrative-driven.
    Meme,
}

impl Sector {
    /// All sectors in presentation order.
    pub const ALL: [Sector; 5] = [
        Sector::Currency,
        Sector::SmartContract,
        Sector::DeFi,
        Sector::Infrastructure,
        Sector::Meme,
    ];

    /// Stable lowercase label used in index-family specs.
    pub fn label(self) -> &'static str {
        match self {
            Sector::Currency => "currency",
            Sector::SmartContract => "smartcontract",
            Sector::DeFi => "defi",
            Sector::Infrastructure => "infra",
            Sector::Meme => "meme",
        }
    }

    /// Parses a label produced by [`Sector::label`].
    pub fn parse(s: &str) -> Option<Sector> {
        Sector::ALL.into_iter().find(|sec| sec.label() == s)
    }
}

impl std::fmt::Display for Sector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Seed-keyed FNV-1a mix assigning a sector to an asset index.
fn sector_for(seed: u64, asset: usize) -> Sector {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for byte in seed
        .to_le_bytes()
        .into_iter()
        .chain((asset as u64).to_le_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Currency 20% / smart-contract 25% / DeFi 25% / infra 20% / meme 10%.
    match h % 100 {
        0..=19 => Sector::Currency,
        20..=44 => Sector::SmartContract,
        45..=69 => Sector::DeFi,
        70..=89 => Sector::Infrastructure,
        _ => Sector::Meme,
    }
}

/// Daily market caps for every asset plus the aggregates the index needs.
#[derive(Debug, Clone)]
pub struct Universe {
    /// First observed day.
    pub start: Date,
    /// Per-asset daily market caps (`caps[asset][day]`, 0.0 before launch).
    pub caps: Vec<Vec<f64>>,
    /// Sector label per asset (same indexing as `caps`).
    pub sectors: Vec<Sector>,
    /// Sum of the 100 largest caps per day.
    pub top100_cap: Vec<f64>,
    /// Sum of all caps per day.
    pub total_cap: Vec<f64>,
}

impl Universe {
    /// Number of observed days.
    pub fn n_days(&self) -> usize {
        self.total_cap.len()
    }

    /// Number of simulated assets.
    pub fn n_assets(&self) -> usize {
        self.caps.len()
    }

    /// Indices of the `k` largest assets on `day`, largest first.
    pub fn top_k(&self, day: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.caps.len()).collect();
        idx.sort_by(|&a, &b| {
            self.caps[b][day]
                .partial_cmp(&self.caps[a][day])
                .expect("caps are finite")
        });
        idx.truncate(k);
        idx
    }

    /// Indices of the `k` largest assets of `sector` on `day`, largest
    /// first. May return fewer than `k` when the sector is small.
    pub fn top_k_in_sector(&self, day: usize, k: usize, sector: Sector) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.caps.len())
            .filter(|&i| self.sectors[i] == sector)
            .collect();
        idx.sort_by(|&a, &b| {
            self.caps[b][day]
                .partial_cmp(&self.caps[a][day])
                .expect("caps are finite")
        });
        idx.truncate(k);
        idx
    }

    /// Fraction of total cap held by the top 100, per day (Figure 1).
    pub fn top100_share(&self) -> Vec<f64> {
        self.top100_cap
            .iter()
            .zip(&self.total_cap)
            .map(|(t, total)| {
                if *total > 0.0 {
                    // The two sums accumulate in different orders; clamp the
                    // share so rounding never pushes it past 1.
                    (t / total).min(1.0)
                } else {
                    f64::NAN
                }
            })
            .collect()
    }
}

/// Simulates the asset universe from the BTC path.
pub fn simulate_universe(config: &SynthConfig, latents: &LatentPaths, btc: &BtcMarket) -> Universe {
    let n_obs = config.n_days();
    let n_assets = config.n_assets.max(101);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x94D0_49BB_1331_11EB));

    let lp0 = latents.log_price[latents.obs(0)];
    let mut caps: Vec<Vec<f64>> = Vec::with_capacity(n_assets);

    // Asset 0: BTC.
    caps.push(btc.market_cap.clone());

    for i in 1..n_assets {
        // Pareto-like base cap: rank 1 ≈ 40% of BTC (ETH), tail tiny.
        // Large caps get little base jitter and betas near 1 so BTC stays
        // the market leader, as it did throughout 2017-2023.
        let rank = i as f64;
        let damping = (rank / 20.0).min(1.0);
        let jitter = ((0.15 + 0.35 * damping) * gaussian(&mut rng)).exp();
        let base = btc.market_cap[0] * 0.40 * rank.powf(-1.05) * jitter;
        let beta = 1.0 + (0.2 + 0.4 * damping) * (rng.gen::<f64>() - 0.5);
        // Smaller assets are noisier; the top of the table is stable.
        let idio_sigma = (0.008 + 0.012 * damping) + 0.03 * (rank / n_assets as f64);
        let phi = crate::latent::phi_for_half_life(45.0);

        // ~35% of the alt universe launches during the sample window.
        let launch_day = if rng.gen::<f64>() < 0.35 {
            (rng.gen::<f64>() * n_obs as f64 * 0.8) as usize
        } else {
            0
        };

        // New launches start depressed and mean-revert upward.
        let mut idio: f64 = if launch_day > 0 {
            -2.5
        } else {
            gaussian(&mut rng) * 0.8
        };
        let mut series = vec![0.0; n_obs];
        for (t, slot) in series.iter_mut().enumerate() {
            if t < launch_day {
                continue;
            }
            idio = phi * idio + idio_sigma * 8.0f64.sqrt() * gaussian(&mut rng);
            let market_term = beta * (latents.log_price[latents.obs(t)] - lp0);
            *slot = base * (market_term + idio).exp();
        }
        caps.push(series);
    }

    // Daily aggregates via partial selection of the 100 largest.
    let mut top100_cap = Vec::with_capacity(n_obs);
    let mut total_cap = Vec::with_capacity(n_obs);
    let mut day_caps: Vec<f64> = Vec::with_capacity(n_assets);
    for t in 0..n_obs {
        day_caps.clear();
        day_caps.extend(caps.iter().map(|c| c[t]));
        let total: f64 = day_caps.iter().sum();
        let k = 100.min(day_caps.len());
        day_caps.select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("finite caps"));
        let top: f64 = day_caps[..k].iter().sum();
        top100_cap.push(top);
        total_cap.push(total);
    }

    let mut sectors: Vec<Sector> = (0..n_assets).map(|i| sector_for(config.seed, i)).collect();
    sectors[0] = Sector::Currency; // BTC

    Universe {
        start: config.start,
        caps,
        sectors,
        top100_cap,
        total_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btc::simulate_btc;
    use crate::latent::simulate;

    fn build(seed: u64) -> (SynthConfig, Universe) {
        let cfg = SynthConfig::small(seed);
        let latents = simulate(&cfg);
        let btc = simulate_btc(&cfg, &latents);
        let universe = simulate_universe(&cfg, &latents, &btc);
        (cfg, universe)
    }

    #[test]
    fn aggregates_are_consistent() {
        let (cfg, u) = build(61);
        assert_eq!(u.n_days(), cfg.n_days());
        assert_eq!(u.n_assets(), cfg.n_assets);
        for t in (0..u.n_days()).step_by(50) {
            assert!(u.top100_cap[t] <= u.total_cap[t] * (1.0 + 1e-12));
            assert!(u.top100_cap[t] > 0.0);
            // Top-100 must dominate the market, as in Figure 1.
            let share = u.top100_cap[t] / u.total_cap[t];
            assert!(share > 0.85, "day {t} share {share}");
        }
    }

    #[test]
    fn btc_is_asset_zero_and_usually_the_largest() {
        let (_, u) = build(62);
        let mut btc_top = 0;
        let checks = (0..u.n_days()).step_by(25);
        let mut total = 0;
        for t in checks {
            total += 1;
            if u.top_k(t, 1)[0] == 0 {
                btc_top += 1;
            }
        }
        assert!(
            btc_top * 10 >= total * 9,
            "BTC top on {btc_top}/{total} checks"
        );
    }

    #[test]
    fn top_k_is_sorted_descending() {
        let (_, u) = build(63);
        let day = u.n_days() / 2;
        let top = u.top_k(day, 20);
        for w in top.windows(2) {
            assert!(u.caps[w[0]][day] >= u.caps[w[1]][day]);
        }
    }

    #[test]
    fn late_launches_create_churn() {
        let (_, u) = build(64);
        let early: std::collections::HashSet<usize> = u.top_k(10, 100).into_iter().collect();
        let late: std::collections::HashSet<usize> =
            u.top_k(u.n_days() - 1, 100).into_iter().collect();
        let overlap = early.intersection(&late).count();
        assert!(overlap < 100, "top-100 membership never changed");
        // Some asset launched mid-sample (cap exactly zero early on).
        assert!(u
            .caps
            .iter()
            .any(|c| c[0] == 0.0 && *c.last().unwrap() > 0.0));
    }

    #[test]
    fn sectors_are_stable_and_cover_every_label() {
        let (cfg, u) = build(66);
        assert_eq!(u.sectors.len(), u.n_assets());
        assert_eq!(u.sectors[0], Sector::Currency);
        // Every sector appears in a 120-asset universe.
        for sector in Sector::ALL {
            assert!(
                u.sectors.contains(&sector),
                "sector {sector} absent from the universe"
            );
        }
        // Scaling the universe up keeps the shared prefix of sector labels
        // (and the cap streams of RNG-independent assets unchanged in
        // aggregate structure) — the matrix relies on this to key prep.
        let big = SynthConfig {
            n_assets: 400,
            ..cfg.clone()
        };
        let latents = simulate(&big);
        let btc = simulate_btc(&big, &latents);
        let ubig = simulate_universe(&big, &latents, &btc);
        assert_eq!(&ubig.sectors[..u.n_assets()], &u.sectors[..]);
    }

    #[test]
    fn top_k_in_sector_is_sorted_and_restricted() {
        let (_, u) = build(67);
        let day = u.n_days() / 2;
        let top = u.top_k_in_sector(day, 15, Sector::DeFi);
        assert!(!top.is_empty());
        for &i in &top {
            assert_eq!(u.sectors[i], Sector::DeFi);
        }
        for w in top.windows(2) {
            assert!(u.caps[w[0]][day] >= u.caps[w[1]][day]);
        }
    }

    #[test]
    fn scales_to_thousands_of_assets() {
        let cfg = SynthConfig {
            n_assets: 2000,
            ..SynthConfig::small(68)
        };
        let latents = simulate(&cfg);
        let btc = simulate_btc(&cfg, &latents);
        let u = simulate_universe(&cfg, &latents, &btc);
        assert_eq!(u.n_assets(), 2000);
        assert_eq!(u.sectors.len(), 2000);
        let top = u.top_k(u.n_days() - 1, 100);
        assert_eq!(top.len(), 100);
    }

    #[test]
    fn caps_are_finite_and_nonnegative() {
        let (_, u) = build(65);
        for c in &u.caps {
            for v in c {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }
}
