//! Feature-selection walkthrough: watch the Feature Reduction Algorithm
//! iterate and compare its survivors against the SHAP ranking.
//!
//! ```text
//! cargo run --release -p c100-core --example feature_selection
//! ```

use c100_core::dataset::assemble;
use c100_core::fra::{run_fra, FraConfig};
use c100_core::profile::Profile;
use c100_core::scenario::{build_scenario, Period};
use c100_core::selection::{final_vector, shap_ranking};

fn main() {
    let data = c100_synth::generate(&c100_synth::SynthConfig::small(7));
    let master = assemble(&data).expect("assemble master panel");
    let scenario = build_scenario(&master, Period::Y2019, 30).expect("build scenario");
    println!(
        "scenario {}: {} candidate features over {} days",
        scenario.id(),
        scenario.feature_names.len(),
        scenario.frame.len()
    );
    println!(
        "cleaning dropped {} features (flat: {:?}, outage: {:?})",
        scenario.clean_report.total_dropped(),
        scenario.clean_report.dropped_flat.len(),
        scenario.clean_report.dropped_missing_run.len(),
    );

    let profile = Profile::fast();
    let fra_config = FraConfig::new().with_target_len(100);
    println!(
        "\nrunning FRA (target ≤ {} features)...",
        fra_config.target_len
    );
    let fra = run_fra(
        &scenario,
        &profile.rf_grid[0],
        &profile.gbdt_grid[0],
        &fra_config,
        profile.pfi_repeats,
        1,
    )
    .expect("FRA run");

    println!("iter  features  removed  corr-threshold");
    for it in &fra.iterations {
        println!(
            "{:>4}  {:>8}  {:>7}  {:.3}{}",
            it.iteration,
            it.n_before,
            it.n_removed,
            it.corr_threshold,
            if it.stall_break {
                "  (stall-break)"
            } else {
                ""
            }
        );
    }
    println!("survivors: {}", fra.surviving.len());

    println!("\ncomputing SHAP ranking for validation...");
    let shap =
        shap_ranking(&scenario, &profile.shap_forest, profile.shap_rows, 2).expect("SHAP ranking");
    let selection = final_vector(&fra, &shap, profile.union_top_k);
    println!(
        "SHAP top-100 ∩ FRA survivors: {} features (paper reports ≈78 on average)",
        selection.overlap_shap100_fra
    );
    println!(
        "final vector (FRA top-75 ∪ SHAP top-75): {} features",
        selection.features.len()
    );

    println!("\ntop 10 FRA survivors by fine-tuned-RF importance:");
    for (name, importance) in fra.ranked().iter().take(10) {
        println!("  {name:<30} {importance:.4}");
    }
}
