//! # c100-matrix
//!
//! The scenario-matrix subsystem: instead of evaluating one fixed index
//! (Crypto100) over one fixed sample, a matrix run crosses **index
//! families** (top-N cuts, CRIX-style rebalanced indices, sector
//! restrictions — [`c100_core::index::IndexFamily`]) with **evaluation
//! windows** (bull/bear/sideways regime segments from the synth latent
//! state, rolling-origin walk-forward folds, and the full sample) and
//! **forecast horizons**, producing 100+ cells per run. Alessandretti et
//! al. show model rankings flip across time windows and universes; the
//! matrix is how the repo detects that instead of averaging over it.
//!
//! ## Execution model
//!
//! [`run_matrix`] expands the cross-product into [`CellPlan`]s, then
//! executes them on a work-stealing thread pool ([`sched`]): cells are
//! dealt round-robin onto per-worker deques, a worker drains its own
//! deque from the front and steals from the back of others when idle.
//! Cells that share an index family and prep window — every horizon of
//! one window, and every walk-forward fold of one family — share the
//! expensive dataset prep (window slicing, cleaning, interpolation,
//! design-matrix assembly, quantile binning) through a [`prep::PrepCache`]
//! keyed by `(family, window-range)`; training prefixes are cut from the
//! shared [`c100_ml::data::BinnedMatrix`] with `prefix_rows`, so the
//! per-feature quantile sort is paid once per window instead of once per
//! cell.
//!
//! ## Crash resume
//!
//! Each completed cell is streamed through [`c100_store::MatrixStore`]
//! as it finishes (atomic rename per cell). A killed run re-opens the
//! store, which returns every intact completed cell; those cells are
//! skipped and their persisted records are emitted verbatim, so the
//! final `matrix.json` is byte-identical to an uninterrupted run. The
//! store is fingerprinted by the matrix configuration — resuming under a
//! changed config is refused rather than silently mixed.
//!
//! ## Determinism
//!
//! `matrix.json` contains no timings, thread counts or timestamps; cell
//! results are pure functions of the configuration (per-cell model seeds
//! are hashed from the run seed and cell id) and the report is sorted by
//! cell id — so the same config produces byte-identical reports at any
//! thread count, killed or not. A proptest in `tests/` asserts this.
//! Cell *failures* (window too short for a horizon, degenerate index)
//! fail the cell, not the run: they are recorded in the flight recorder
//! and reported as `"failed"` cells in the report.

pub mod prep;
pub mod report;
pub mod runner;
pub mod sched;
pub mod spec;

pub use report::{CellResult, CellStatus, MatrixReport};
pub use runner::{run_matrix, MatrixObs, MatrixOutcome};
pub use spec::{CellPlan, EvalWindow, MatrixConfig, SplitRule, WindowKind};

use std::fmt;

/// Errors that abort a whole matrix run (per-cell failures do not — they
/// fail the cell and the run continues).
#[derive(Debug)]
pub enum MatrixError {
    /// The matrix configuration is invalid (message explains).
    Config(String),
    /// Persisting or resuming through the matrix store failed.
    Store(c100_store::StoreError),
    /// A run-level (not cell-level) pipeline step failed.
    Core(c100_core::CoreError),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Config(msg) => write!(f, "matrix config error: {msg}"),
            MatrixError::Store(e) => write!(f, "matrix store error: {e}"),
            MatrixError::Core(e) => write!(f, "matrix pipeline error: {e}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<c100_store::StoreError> for MatrixError {
    fn from(e: c100_store::StoreError) -> Self {
        MatrixError::Store(e)
    }
}

impl From<c100_core::CoreError> for MatrixError {
    fn from(e: c100_core::CoreError) -> Self {
        MatrixError::Core(e)
    }
}

/// Result alias for run-level matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// FNV-1a 64 over a string — the hash behind cell seeds and the run
/// fingerprint.
pub(crate) fn fnv1a64(text: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
