//! Serving hot-path throughput over loopback: 1/8/64 concurrent
//! connections, micro-batching on and off.
//!
//! Besides the Criterion timings, each configuration's measured volley
//! throughput is recorded to `results/BENCH_serve.json` so later PRs
//! can regress-gate the serving path without re-running Criterion.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c100_bench::dataset::{synthetic_regression, wrap_artifact};
use c100_ml::forest::RandomForestConfig;
use c100_obs::MetricsRegistry;
use c100_serve::{ServeConfig, Server, ServerHandle};
use c100_store::{ArtifactStore, ModelPayload};

const ROWS_PER_REQUEST: usize = 16;
const REQUESTS_PER_CONNECTION: usize = 4;

fn seeded_store() -> (PathBuf, String) {
    let root = std::env::temp_dir().join(format!("c100_bench_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let (x, y) = synthetic_regression(200, 6, 5);
    let model = RandomForestConfig {
        n_estimators: 20,
        max_depth: Some(6),
        ..Default::default()
    }
    .fit(&x, &y, 5)
    .unwrap();
    let artifact = wrap_artifact(ModelPayload::Rf(model), x.n_rows() as u64, 5);
    let entry = ArtifactStore::open(&root).unwrap().save(&artifact).unwrap();
    (root, entry.id)
}

fn start_server(root: &PathBuf, max_batch: usize) -> ServerHandle {
    let mut config = ServeConfig::new(root, "127.0.0.1:0");
    config.workers = 4;
    config.queue_depth = 256;
    config.max_batch = max_batch;
    config.max_wait = Duration::from_millis(2);
    Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap()
}

fn predict_body(artifact_id: &str) -> String {
    let mut rows = String::new();
    for r in 0..ROWS_PER_REQUEST {
        if r > 0 {
            rows.push(',');
        }
        let cells: Vec<String> = (0..6)
            .map(|c| format!("{}", (r * 6 + c) as f64 * 0.01))
            .collect();
        rows.push_str(&format!("[{}]", cells.join(",")));
    }
    format!("{{\"artifact\":\"{artifact_id}\",\"rows\":[{rows}]}}")
}

/// One client: `REQUESTS_PER_CONNECTION` sequential request/response
/// round trips (each on a fresh connection — the server is
/// `Connection: close`). Returns the number of 200s.
fn client_volley(addr: std::net::SocketAddr, raw: &[u8]) -> usize {
    let mut ok = 0;
    for _ in 0..REQUESTS_PER_CONNECTION {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(raw).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        if response.starts_with("HTTP/1.1 200") {
            ok += 1;
        }
    }
    ok
}

/// Fires `connections` concurrent clients; returns (elapsed, oks).
fn volley(server: &ServerHandle, connections: usize, raw: &[u8]) -> (Duration, usize) {
    let addr = server.local_addr();
    let started = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|_| {
            let raw = raw.to_vec();
            std::thread::spawn(move || client_volley(addr, &raw))
        })
        .collect();
    let oks = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (started.elapsed(), oks)
}

fn serve_throughput(c: &mut Criterion) {
    let (root, artifact_id) = seeded_store();
    let body = predict_body(&artifact_id);
    let raw = format!(
        "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes();

    let mut recorded = String::from("{\"bench\":\"serve_throughput\",\"results\":[");
    let mut first = true;
    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (mode, max_batch) in [("batch_on", 8usize), ("batch_off", 1usize)] {
        for connections in [1usize, 8, 64] {
            let server = start_server(&root, max_batch);

            // Manual measurement for BENCH_serve.json, independent of
            // Criterion's own sampling.
            let (elapsed, oks) = volley(&server, connections, &raw);
            let total = connections * REQUESTS_PER_CONNECTION;
            assert_eq!(oks, total, "all bench requests must succeed");
            let rps = total as f64 / elapsed.as_secs_f64();
            if !first {
                recorded.push(',');
            }
            first = false;
            recorded.push_str(&format!(
                "{{\"connections\":{connections},\"batching\":\"{mode}\",\
                 \"requests\":{total},\"rows_per_request\":{ROWS_PER_REQUEST},\
                 \"elapsed_micros\":{},\"requests_per_sec\":{rps:.1}}}",
                elapsed.as_micros()
            ));

            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{mode}/conns_{connections}")),
                &connections,
                |b, &connections| {
                    b.iter(|| volley(&server, connections, &raw));
                },
            );
            server.shutdown();
        }
    }
    group.finish();
    recorded.push_str("]}\n");

    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&results_dir).expect("create results dir");
    let path = results_dir.join("BENCH_serve.json");
    std::fs::write(&path, recorded).expect("write BENCH_serve.json");
    eprintln!("recorded serve throughput -> {}", path.display());

    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
