//! End-to-end matrix runs: the full cross-product completes, resume
//! from a partial store is byte-identical to an uninterrupted run, and
//! (the crate's determinism contract) thread count never changes a byte
//! of `matrix.json`.

use std::fs;
use std::path::PathBuf;

use c100_matrix::{run_matrix, CellStatus, MatrixConfig, MatrixObs};
use c100_obs::metrics::MetricsRegistry;
use c100_obs::ring::FlightRecorder;
use c100_synth::SynthConfig;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_matrix_run_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A matrix small enough for tests but still multi-family,
/// multi-window, multi-horizon.
fn small_config(seed: u64) -> MatrixConfig {
    let mut config = MatrixConfig::new(seed, SynthConfig::small(seed));
    config.families.truncate(2); // top100, crix30r30
    config.horizons = vec![1, 7];
    config.wf_folds = 2;
    config
}

#[test]
fn full_matrix_completes_and_reports_every_cell() {
    let dir = tmp_dir("full");
    let metrics = MetricsRegistry::new();
    let flight = FlightRecorder::new();
    let obs = MatrixObs {
        tracer: None,
        metrics: Some(&metrics),
        flight: Some(&flight),
    };
    let config = small_config(11);
    let outcome = run_matrix(&config, 2, &dir, false, obs).unwrap();

    let n_cells = outcome.report.cells.len();
    assert!(n_cells >= 12, "only {n_cells} cells");
    assert_eq!(outcome.resumed, 0);
    assert_eq!(outcome.computed as usize, n_cells);
    assert_eq!(outcome.report.ok + outcome.report.failed, n_cells as u64);
    // The matrix is useful: most cells evaluate, and shared prep means
    // strictly fewer preps than cells.
    assert!(
        outcome.report.ok as usize > n_cells / 2,
        "too many failed cells: {} ok of {n_cells}",
        outcome.report.ok
    );
    assert!(outcome.prep_builds > 0);
    assert!(
        (outcome.prep_builds as usize) < n_cells,
        "no prep sharing: {} builds for {n_cells} cells",
        outcome.prep_builds
    );
    // Every failure (if any) hit the flight recorder, not the run.
    assert_eq!(flight.recorded(), outcome.report.failed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_partial_store_is_byte_identical() {
    let complete_dir = tmp_dir("resume_complete");
    let partial_dir = tmp_dir("resume_partial");
    let config = small_config(13);

    let uninterrupted =
        run_matrix(&config, 2, &complete_dir, false, MatrixObs::disabled()).unwrap();
    let reference = uninterrupted.report.render();

    // Simulate a SIGKILL mid-run: a store holding the run file and only
    // some of the completed cells (exactly what atomic per-cell writes
    // leave behind).
    fs::create_dir_all(partial_dir.join("cells")).unwrap();
    fs::copy(
        complete_dir.join("matrix_run.json"),
        partial_dir.join("matrix_run.json"),
    )
    .unwrap();
    let mut cell_files: Vec<PathBuf> = fs::read_dir(complete_dir.join("cells"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    cell_files.sort();
    let keep = cell_files.len() / 3;
    for file in &cell_files[..keep] {
        fs::copy(
            file,
            partial_dir.join("cells").join(file.file_name().unwrap()),
        )
        .unwrap();
    }

    let resumed = run_matrix(&config, 3, &partial_dir, false, MatrixObs::disabled()).unwrap();
    assert_eq!(resumed.resumed as usize, keep);
    assert_eq!(
        resumed.computed as usize,
        uninterrupted.report.cells.len() - keep
    );
    assert_eq!(resumed.report.render(), reference, "resume changed bytes");
    let _ = fs::remove_dir_all(&complete_dir);
    let _ = fs::remove_dir_all(&partial_dir);
}

#[test]
fn changed_config_refuses_stale_store_unless_fresh() {
    let dir = tmp_dir("stale");
    let config = small_config(17);
    run_matrix(&config, 1, &dir, false, MatrixObs::disabled()).unwrap();

    let mut changed = small_config(17);
    changed.horizons = vec![1];
    let err = run_matrix(&changed, 1, &dir, false, MatrixObs::disabled()).unwrap_err();
    assert!(
        err.to_string().contains("--fresh"),
        "unhelpful mismatch error: {err}"
    );
    let outcome = run_matrix(&changed, 1, &dir, true, MatrixObs::disabled()).unwrap();
    assert_eq!(outcome.resumed, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn second_run_resumes_everything_and_computes_nothing() {
    let dir = tmp_dir("rerun");
    let config = small_config(19);
    let first = run_matrix(&config, 2, &dir, false, MatrixObs::disabled()).unwrap();
    let second = run_matrix(&config, 2, &dir, false, MatrixObs::disabled()).unwrap();
    assert_eq!(second.computed, 0);
    assert_eq!(second.resumed as usize, first.report.cells.len());
    assert_eq!(second.report.render(), first.report.render());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn walk_forward_and_regime_windows_both_contribute_ok_cells() {
    let dir = tmp_dir("kinds");
    let config = small_config(23);
    let outcome = run_matrix(&config, 2, &dir, false, MatrixObs::disabled()).unwrap();
    let cells: Vec<c100_matrix::CellResult> = outcome
        .report
        .cells
        .iter()
        .map(|(_, payload)| c100_matrix::CellResult::parse(payload).unwrap())
        .collect();
    let ok_kinds: std::collections::HashSet<&str> = cells
        .iter()
        .filter(|c| c.status == CellStatus::Ok)
        .map(|c| c.window_kind.as_str())
        .collect();
    assert!(ok_kinds.contains("full"), "kinds: {ok_kinds:?}");
    assert!(ok_kinds.contains("walkforward"), "kinds: {ok_kinds:?}");
    assert!(
        ok_kinds
            .iter()
            .any(|k| matches!(*k, "bull" | "bear" | "sideways")),
        "no regime window produced an ok cell: {ok_kinds:?}"
    );
    // Ok cells carry finite metrics; failed cells carry a reason.
    for cell in &cells {
        match cell.status {
            CellStatus::Ok => {
                assert!(cell.mse.is_finite(), "{}: mse {}", cell.cell_id, cell.mse);
                assert!(cell.baseline_mse.is_finite());
                assert!(cell.train_rows >= 40 && cell.test_rows >= 10);
            }
            CellStatus::Failed => assert!(!cell.error.is_empty(), "{}", cell.cell_id),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
