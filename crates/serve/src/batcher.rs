//! Micro-batching of `/predict` work.
//!
//! Workers hand validated prediction jobs to a batcher shard, which
//! coalesces rows destined for the *same artifact* into one
//! [`BatchPredictor::predict_matrix`] call. A batch flushes when its
//! accumulated rows reach the configured maximum, when a worker runs
//! out of queued requests (the [`BatchSubmitter::nudge`] below), or
//! when the oldest job has waited out the `max_wait` deadline,
//! whichever comes first.
//!
//! The batcher is **sharded**: tracing the original single-thread
//! design under 64 concurrent connections showed every flush
//! serialising behind one thread — batch-on measured *slower* than
//! batch-off, pure handoff loss. Jobs now route to one of N shards by
//! a stable hash of the artifact id, so rows for the same artifact
//! still meet and coalesce while different artifacts flush in
//! parallel. (A second part of the fix lives in the predict path:
//! requests already carrying `max_batch` rows bypass the batcher
//! entirely — they would flush alone anyway, so the handoff buys
//! nothing.)
//!
//! Submission is **non-blocking** and flushes are **leader-executed**:
//! a worker parks its job and immediately returns to the queue for
//! more work; whichever submission completes a batch takes it out of
//! the shard (under the shard mutex) and runs the flush on its own
//! thread, handing each finished response straight to the owning
//! reactor. Profiling earlier designs showed that parking the *worker*
//! (not just the job) cost a scheduler wake-up per coalesced request —
//! on small machines that erased the win from coalescing. With
//! deferred replies the batched path crosses threads exactly as often
//! as the unbatched one.
//!
//! Because workers never block on a batch, a parked job is only ever
//! waiting for *more traffic*. The moment a worker finds the request
//! queue empty it nudges the batcher, flushing everything parked:
//! nothing else is coming, so holding out for the deadline would be
//! pure added latency. A lone request on an idle server is therefore
//! flushed by its own worker microseconds after parking. The `max_wait`
//! deadline — enforced by a per-shard sweeper thread — only bites when
//! workers stay busy with traffic that cannot join the parked batch.
//!
//! Coalescing is bit-identical to serving each request alone: the
//! ensemble predicts each row independently (`predict_row` never looks
//! at neighbouring rows), and rows are returned to each job in
//! submission order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use c100_ml::data::Matrix;
use c100_obs::{FlightRecorder, HistogramHandle, MetricsRegistry, TraceCtx, Tracer};
use c100_store::BatchPredictor;

/// Histogram of rows per flushed batch (the coalesced-batch-size
/// distribution ROADMAP item 1's batcher profiling asks for).
pub const BATCH_ROWS_METRIC: &str = "serve.batch_rows";

/// Histogram of wall time per flush (matrix build + predict + replies).
pub const BATCH_FLUSH_METRIC: &str = "serve.batch_flush_micros";

/// What a job gets back for its slice of a flushed batch.
pub type BatchReply = Result<Vec<f64>, String>;

/// A finished request the flusher must complete on the submitter's
/// behalf: everything needed to render the response, account it, and
/// route it back to the connection's reactor shard.
#[derive(Clone, Copy)]
pub struct DeferredReply {
    /// Reactor-local connection id the response must return to.
    pub conn_id: u64,
    /// Which reactor shard owns the connection.
    pub shard: usize,
    /// When the request finished parsing (request-latency epoch).
    pub received_at: Instant,
    /// When the handler started (handler-latency epoch).
    pub started: Instant,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Where a flushed job's predictions go.
pub enum ReplySink {
    /// Sent over a channel; the submitter is blocked waiting on it.
    Channel(Sender<BatchReply>),
    /// Rendered into an HTTP response at flush time and delivered to
    /// the connection's reactor; the submitting worker has moved on.
    Deferred(DeferredReply),
}

/// Completes a deferred job: renders the response from the flush
/// result, records request accounting, and hands it to the reactor.
/// Installed by the server at startup.
pub type Deliver = Arc<dyn Fn(DeferredReply, &str, &Arc<BatchPredictor>, BatchReply) + Send + Sync>;

/// One validated prediction request, ready to coalesce. The rows are
/// already schema-checked and finite; the batcher treats them as
/// opaque feature vectors of the artifact's width.
pub struct PredictJob {
    /// Content address of the model to run; the coalescing key.
    pub artifact_id: String,
    /// Scenario label, used only to tag spans.
    pub scenario: String,
    /// The predictor to run the flushed batch through.
    pub predictor: Arc<BatchPredictor>,
    /// Feature rows contributed by this job.
    pub rows: Vec<Vec<f64>>,
    /// Where the job's predictions (in row order) are sent.
    pub reply: ReplySink,
}

struct PendingBatch {
    artifact_id: String,
    predictor: Arc<BatchPredictor>,
    scenario: String,
    rows: Vec<Vec<f64>>,
    /// `(reply, row_count)` per coalesced job, in arrival order.
    jobs: Vec<(ReplySink, usize)>,
    deadline: Instant,
}

struct ShardState {
    pending: HashMap<String, PendingBatch>,
    /// Jobs currently parked in `pending`.
    waiting: usize,
    shutdown: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Wakes the sweeper when a new deadline appears or on shutdown.
    sweeper: Condvar,
    /// Lock-free mirror of `state.waiting`, refreshed under the lock
    /// whenever it changes; lets `nudge` skip shards without locking.
    parked: AtomicUsize,
}

/// Configuration and instrumentation shared by submitters and sweepers.
struct Inner {
    shards: Vec<Shard>,
    max_batch: usize,
    max_wait: Duration,
    deliver: Deliver,
    metrics: BatchMetrics,
    tracer: Option<Arc<Tracer>>,
    flight: Option<Arc<FlightRecorder>>,
}

impl Inner {
    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, ShardState> {
        self.shards[shard]
            .state
            .lock()
            .expect("batcher shard poisoned")
    }
}

/// Routes jobs to batcher shards by a stable hash of the artifact id,
/// so the same artifact always lands on the same shard (and therefore
/// still coalesces) while distinct artifacts flush concurrently.
#[derive(Clone)]
pub struct BatchSubmitter {
    inner: Arc<Inner>,
}

impl BatchSubmitter {
    /// Parks a job on its artifact's shard and returns immediately. If
    /// this submission completes a batch (row budget reached), the
    /// calling thread flushes it inline before returning. Errors (with
    /// the job handed back) only once the batcher has shut down.
    // Handing the whole job back is the point of the error: the caller
    // serves it inline instead of failing the request. It only happens
    // during shutdown drain, so the Err size is not a hot-path cost.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job: PredictJob) -> Result<(), PredictJob> {
        let inner = &*self.inner;
        let shard_idx = fnv1a(job.artifact_id.as_bytes()) as usize % inner.shards.len();
        let to_flush = {
            let mut state = inner.lock_shard(shard_idx);
            if state.shutdown {
                return Err(job);
            }
            let new_batch = !state.pending.contains_key(&job.artifact_id);
            let batch = state
                .pending
                .entry(job.artifact_id.clone())
                .or_insert_with(|| PendingBatch {
                    artifact_id: job.artifact_id.clone(),
                    predictor: job.predictor.clone(),
                    scenario: job.scenario.clone(),
                    rows: Vec::new(),
                    jobs: Vec::new(),
                    deadline: Instant::now() + inner.max_wait,
                });
            batch.jobs.push((job.reply, job.rows.len()));
            batch.rows.extend(job.rows);
            let batch_full = batch.rows.len() >= inner.max_batch;
            state.waiting += 1;
            let flushable = if batch_full {
                let batch = state
                    .pending
                    .remove(&job.artifact_id)
                    .expect("just inserted");
                state.waiting -= batch.jobs.len();
                Some(batch)
            } else {
                if new_batch {
                    // A fresh deadline; make sure the sweeper sees it.
                    inner.shards[shard_idx].sweeper.notify_one();
                }
                None
            };
            inner.shards[shard_idx]
                .parked
                .store(state.waiting, Ordering::Release);
            flushable
        };
        // Leader execution happens outside the lock, so other workers
        // keep accumulating the next batch while this one predicts.
        if let Some(batch) = to_flush {
            flush(batch, inner);
        }
        Ok(())
    }

    /// Flushes everything parked, everywhere. Workers call this when
    /// they find the request queue empty: no more traffic is coming to
    /// grow any batch, so holding parked jobs for the deadline would be
    /// pure added latency. The lock-free `parked` screen makes this
    /// free when (as is typical mid-flood) nothing is waiting.
    pub fn nudge(&self) {
        let inner = &*self.inner;
        for (shard_idx, shard) in inner.shards.iter().enumerate() {
            if shard.parked.load(Ordering::Acquire) == 0 {
                continue;
            }
            let batches = {
                let mut state = inner.lock_shard(shard_idx);
                if state.waiting == 0 {
                    continue;
                }
                let batches: Vec<PendingBatch> =
                    state.pending.drain().map(|(_, batch)| batch).collect();
                state.waiting = 0;
                shard.parked.store(0, Ordering::Release);
                batches
            };
            for batch in batches {
                flush(batch, inner);
            }
        }
    }

    /// How many shards jobs fan out across.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }
}

/// FNV-1a, the cheap stable hash used for shard routing (artifact ids
/// are short content hashes; distribution quality is not critical, only
/// determinism).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shared batching state plus the deadline-sweeper threads.
pub struct Batcher {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Spawns `shards` deadline sweepers (minimum 1). `max_batch` is
    /// the row budget per flush; `max_wait` bounds how long the first
    /// job of a batch can sit before the sweeper flushes it anyway.
    /// `deliver` completes deferred jobs at flush time (render the
    /// response, account it, hand it to the reactor).
    pub fn start(
        max_batch: usize,
        max_wait: Duration,
        shards: usize,
        deliver: Deliver,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Batcher {
        let inner = Arc::new(Inner {
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        pending: HashMap::new(),
                        waiting: 0,
                        shutdown: false,
                    }),
                    sweeper: Condvar::new(),
                    parked: AtomicUsize::new(0),
                })
                .collect(),
            max_batch: max_batch.max(1),
            max_wait,
            deliver,
            metrics: BatchMetrics {
                rows: registry.histogram(BATCH_ROWS_METRIC),
                flush_micros: registry.histogram(BATCH_FLUSH_METRIC),
            },
            tracer,
            flight,
        });
        let handles = (0..inner.shards.len())
            .map(|i| {
                let inner = inner.clone();
                thread::Builder::new()
                    .name(format!("serve-batcher-{i}"))
                    .spawn(move || sweep(&inner, i))
                    .expect("spawn batcher sweeper")
            })
            .collect();
        Batcher { inner, handles }
    }

    /// A submission handle for worker threads.
    pub fn sender(&self) -> BatchSubmitter {
        BatchSubmitter {
            inner: self.inner.clone(),
        }
    }

    /// Flags every shard as shut down and joins the sweepers, which
    /// flush whatever is still pending on the way out; submissions
    /// racing with shutdown get their job handed back instead of being
    /// stranded.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for (i, shard) in self.inner.shards.iter().enumerate() {
            self.inner.lock_shard(i).shutdown = true;
            shard.sweeper.notify_all();
        }
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // Best effort on an un-shutdown drop path.
        self.stop();
    }
}

/// Deadline sweeper for one shard: sleeps until the earliest pending
/// deadline (or indefinitely when idle) and flushes whatever is due.
/// Fill and nudge flushes handle the fast paths; this thread only
/// exists so a parked batch still flushes within `max_wait` when the
/// workers stay busy with traffic that cannot join it.
fn sweep(inner: &Inner, shard_idx: usize) {
    let shard = &inner.shards[shard_idx];
    let mut state = inner.lock_shard(shard_idx);
    loop {
        if state.shutdown {
            let leftovers: Vec<PendingBatch> =
                state.pending.drain().map(|(_, batch)| batch).collect();
            state.waiting = 0;
            shard.parked.store(0, Ordering::Release);
            drop(state);
            // Graceful shutdown never strands a waiting request.
            for batch in leftovers {
                flush(batch, inner);
            }
            return;
        }
        let now = Instant::now();
        let due: Vec<String> = state
            .pending
            .iter()
            .filter(|(_, batch)| batch.deadline <= now)
            .map(|(id, _)| id.clone())
            .collect();
        if !due.is_empty() {
            let mut batches = Vec::with_capacity(due.len());
            for id in due {
                let batch = state.pending.remove(&id).expect("key listed as due");
                state.waiting -= batch.jobs.len();
                batches.push(batch);
            }
            shard.parked.store(state.waiting, Ordering::Release);
            drop(state);
            for batch in batches {
                flush(batch, inner);
            }
            state = inner.lock_shard(shard_idx);
            continue;
        }
        state = match state.pending.values().map(|batch| batch.deadline).min() {
            None => shard.sweeper.wait(state).expect("batcher shard poisoned"),
            Some(deadline) => {
                shard
                    .sweeper
                    .wait_timeout(state, deadline.saturating_duration_since(now))
                    .expect("batcher shard poisoned")
                    .0
            }
        };
    }
}

/// Handles flushes record through, resolved once at startup.
struct BatchMetrics {
    rows: HistogramHandle,
    flush_micros: HistogramHandle,
}

fn flush(batch: PendingBatch, inner: &Inner) {
    let metrics = &inner.metrics;
    let tracer = inner.tracer.as_deref();
    let flight = inner.flight.as_deref();
    let n_rows = batch.rows.len();
    if n_rows == 0 {
        return;
    }
    metrics.rows.observe_micros(n_rows as u64);
    let flush_started = Instant::now();

    let span = tracer.map(|t| t.span(&batch.scenario, "serve.batch"));
    let ctx = span.as_ref().map_or(TraceCtx::disabled(), |s| s.ctx());

    let width = batch.predictor.artifact().features.len();
    let mut flat = Vec::with_capacity(n_rows * width);
    for row in &batch.rows {
        flat.extend_from_slice(row);
    }
    let result = {
        let _predict = ctx.span("serve.predict");
        Matrix::from_row_major(flat, width.max(1))
            .map_err(|e| e.to_string())
            .and_then(|m| {
                batch
                    .predictor
                    .predict_matrix(&m)
                    .map_err(|e| e.to_string())
            })
    };
    drop(span);

    let elapsed_micros = flush_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    metrics.flush_micros.observe_micros(elapsed_micros);
    if let Some(flight) = flight {
        let outcome = if result.is_ok() { "ok" } else { "error" };
        flight.record(
            "batch_flush",
            &format!(
                "{} rows={n_rows} jobs={} {outcome}",
                batch.scenario,
                batch.jobs.len()
            ),
            Some(elapsed_micros),
        );
    }

    let mut offset = 0;
    for (sink, count) in batch.jobs {
        let job_result = match &result {
            Ok(preds) => {
                let slice = preds[offset..offset + count].to_vec();
                offset += count;
                Ok(slice)
            }
            Err(message) => Err(message.clone()),
        };
        match sink {
            // A vanished receiver means the client hung up; fine.
            ReplySink::Channel(reply) => drop(reply.send(job_result)),
            ReplySink::Deferred(deferred) => {
                (inner.deliver)(deferred, &batch.artifact_id, &batch.predictor, job_result)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_deliver() -> Deliver {
        Arc::new(|_, _, _, _| {})
    }

    // Building a real predictor needs a fitted model; batcher behaviour
    // with live models is covered by the server integration tests. The
    // units here exercise scheduling-adjacent pieces that need no model.

    #[test]
    fn empty_flush_is_a_no_op() {
        let registry = Arc::new(MetricsRegistry::new());
        let batcher = Batcher::start(
            8,
            Duration::from_millis(1),
            1,
            noop_deliver(),
            registry.clone(),
            None,
            None,
        );
        batcher.shutdown();
        // The batcher preregisters its histograms, but records nothing.
        let snap = registry.snapshot();
        assert_eq!(snap.histograms[BATCH_ROWS_METRIC].count, 0);
        assert_eq!(snap.histograms[BATCH_FLUSH_METRIC].count, 0);
    }

    #[test]
    fn batcher_preregisters_flush_histograms() {
        let registry = Arc::new(MetricsRegistry::new());
        let batcher = Batcher::start(
            8,
            Duration::from_millis(1),
            4,
            noop_deliver(),
            registry.clone(),
            None,
            None,
        );
        batcher.shutdown();
        let snap = registry.snapshot();
        assert!(snap.histograms.contains_key(BATCH_ROWS_METRIC));
        assert!(snap.histograms.contains_key(BATCH_FLUSH_METRIC));
    }

    #[test]
    fn submitter_routes_an_artifact_to_one_stable_shard() {
        let registry = Arc::new(MetricsRegistry::new());
        let batcher = Batcher::start(
            8,
            Duration::from_millis(1),
            4,
            noop_deliver(),
            registry,
            None,
            None,
        );
        let submitter = batcher.sender();
        assert_eq!(submitter.shards(), 4);
        // The routing hash is a pure function of the id: same id, same
        // shard, every time and on every clone of the submitter.
        let shard_of = |id: &str| fnv1a(id.as_bytes()) as usize % submitter.shards();
        for id in ["abc123", "def456", "0f0f0f", ""] {
            assert_eq!(shard_of(id), shard_of(id));
            assert!(shard_of(id) < 4);
        }
        // And distinct ids actually spread (not all on shard 0).
        let shards: std::collections::HashSet<usize> = (0..64)
            .map(|i| shard_of(&format!("artifact-{i}")))
            .collect();
        assert!(shards.len() > 1, "64 ids all hashed to one shard");
        // Shutdown does not depend on live submitter clones: shards are
        // flagged, sweepers join, and this clone gets jobs handed back.
        batcher.shutdown();
        assert_eq!(submitter.shards(), 4);
    }

    #[test]
    fn parked_jobs_flush_on_nudge_and_submit_refuses_after_shutdown() {
        let registry = Arc::new(MetricsRegistry::new());
        let batcher = Batcher::start(
            64, // can never fill from the submissions below
            Duration::from_secs(30),
            2,
            noop_deliver(),
            registry.clone(),
            None,
            None,
        );
        let submitter = batcher.sender();
        let predictor = Arc::new(dummy_predictor());
        let (tx, rx) = std::sync::mpsc::channel();
        submitter
            .submit(PredictJob {
                artifact_id: "artifact-a".into(),
                scenario: "t".into(),
                predictor: predictor.clone(),
                rows: vec![vec![1.0]],
                reply: ReplySink::Channel(tx),
            })
            .unwrap_or_else(|_| panic!("live batcher must accept"));
        // Parked: the batch cannot fill and the deadline is far away.
        assert!(rx.try_recv().is_err());
        // A worker going idle nudges; the parked job flushes inline.
        submitter.nudge();
        let forecasts = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("nudge flushes the parked job")
            .expect("predict succeeds");
        assert_eq!(forecasts.len(), 1);
        assert_eq!(
            registry.snapshot().histograms[BATCH_ROWS_METRIC].count,
            1,
            "exactly one flush"
        );

        batcher.shutdown();
        let (tx, rx) = std::sync::mpsc::channel();
        let refused = submitter.submit(PredictJob {
            artifact_id: "gone".into(),
            scenario: "gone".into(),
            predictor,
            rows: vec![vec![0.0]],
            reply: ReplySink::Channel(tx),
        });
        assert!(refused.is_err(), "post-shutdown submit must refuse");
        // And nothing was sent on the reply channel.
        assert!(rx.try_recv().is_err());
    }

    fn dummy_predictor() -> BatchPredictor {
        use c100_ml::forest::RandomForestConfig;
        use c100_store::{ModelArtifact, ModelPayload};
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let model = RandomForestConfig {
            n_estimators: 1,
            max_depth: Some(2),
            ..Default::default()
        }
        .fit(&x, &y, 1)
        .unwrap();
        BatchPredictor::new(ModelArtifact {
            scenario: "t".into(),
            period: "t".into(),
            window: 1,
            features: vec!["f0".into()],
            profile: "fast".into(),
            seed: 1,
            train_rows: 8,
            train_start: String::new(),
            train_end: String::new(),
            hyperparameters: Default::default(),
            model: ModelPayload::Rf(model),
        })
    }
}
