//! Cell records and the `matrix.json` report.
//!
//! A cell record is one line of JSON with a fixed field order, produced
//! only by [`CellResult::encode`] — the same bytes whether the cell ran
//! just now, on another thread count, or in a previous killed run (the
//! store persists the encoded line verbatim and resume re-emits it).
//! The report is the sorted concatenation of those lines plus a header,
//! so `matrix.json` is byte-deterministic end to end.

use c100_obs::json::{self, write_escaped, Value};

use crate::{MatrixError, Result};

/// Report format revision.
pub const MATRIX_REPORT_VERSION: u64 = 1;

/// Whether a cell produced metrics or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell trained and evaluated; `mse`/`baseline_mse` are valid.
    Ok,
    /// The cell could not run (window too short for the horizon, or a
    /// degenerate prep); `error` explains. Fails the cell, not the run.
    Failed,
}

impl CellStatus {
    fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
        }
    }
}

/// One evaluated (or failed) matrix cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Stable cell id (`family/window/h<horizon>`).
    pub cell_id: String,
    /// Index-family id axis value.
    pub family: String,
    /// Window id axis value.
    pub window: String,
    /// Window kind label (`full`, `bull`, `bear`, `sideways`,
    /// `walkforward`).
    pub window_kind: String,
    /// Horizon axis value, days ahead.
    pub horizon: u64,
    /// Outcome.
    pub status: CellStatus,
    /// Training rows the model fit on (0 when failed).
    pub train_rows: u64,
    /// Held-out rows the metrics cover (0 when failed).
    pub test_rows: u64,
    /// Model mean squared error on the held-out rows (NaN when failed;
    /// serialized as `null`).
    pub mse: f64,
    /// Persistence-baseline MSE on the same rows (NaN when failed).
    pub baseline_mse: f64,
    /// Failure explanation (empty when ok).
    pub error: String,
}

impl CellResult {
    /// A failed cell carrying only its axes and the error message.
    pub fn failed(
        cell_id: &str,
        family: &str,
        window: &str,
        kind: &str,
        horizon: u64,
        error: String,
    ) -> CellResult {
        CellResult {
            cell_id: cell_id.to_string(),
            family: family.to_string(),
            window: window.to_string(),
            window_kind: kind.to_string(),
            horizon,
            status: CellStatus::Failed,
            train_rows: 0,
            test_rows: 0,
            mse: f64::NAN,
            baseline_mse: f64::NAN,
            error,
        }
    }

    /// Encodes the canonical one-line record. Field order is fixed;
    /// floats go through [`c100_obs::json::write_float`] (shortest
    /// round-trip, `null` for non-finite) — this is the byte-determinism
    /// contract.
    pub fn encode(&self) -> String {
        let mut w = json::Writer::new();
        w.begin();
        w.str_field("cell", &self.cell_id);
        w.str_field("family", &self.family);
        w.str_field("window", &self.window);
        w.str_field("window_kind", &self.window_kind);
        w.uint_field("horizon", self.horizon);
        w.str_field("status", self.status.label());
        w.uint_field("train_rows", self.train_rows);
        w.uint_field("test_rows", self.test_rows);
        w.float_field("mse", self.mse);
        w.float_field("baseline_mse", self.baseline_mse);
        w.str_field("error", &self.error);
        w.end();
        w.finish()
    }

    /// Parses a record produced by [`CellResult::encode`] (used on
    /// resume to count statuses without recomputing anything).
    pub fn parse(text: &str) -> Result<CellResult> {
        let malformed = |what: String| MatrixError::Config(format!("cell record: {what}"));
        let value = json::parse(text).map_err(|e| malformed(e.to_string()))?;
        let status = match value
            .req_str("status")
            .map_err(|e| malformed(e.to_string()))?
        {
            "ok" => CellStatus::Ok,
            "failed" => CellStatus::Failed,
            other => return Err(malformed(format!("unknown status {other:?}"))),
        };
        let float_or_nan = |key: &str| match value.get(key) {
            Some(Value::Null) | None => Ok(f64::NAN),
            _ => value.req_float(key).map_err(|e| malformed(e.to_string())),
        };
        Ok(CellResult {
            cell_id: value
                .req_str("cell")
                .map_err(|e| malformed(e.to_string()))?
                .to_string(),
            family: value
                .req_str("family")
                .map_err(|e| malformed(e.to_string()))?
                .to_string(),
            window: value
                .req_str("window")
                .map_err(|e| malformed(e.to_string()))?
                .to_string(),
            window_kind: value
                .req_str("window_kind")
                .map_err(|e| malformed(e.to_string()))?
                .to_string(),
            horizon: value
                .req_uint("horizon")
                .map_err(|e| malformed(e.to_string()))?,
            status,
            train_rows: value
                .req_uint("train_rows")
                .map_err(|e| malformed(e.to_string()))?,
            test_rows: value
                .req_uint("test_rows")
                .map_err(|e| malformed(e.to_string()))?,
            mse: float_or_nan("mse")?,
            baseline_mse: float_or_nan("baseline_mse")?,
            error: value
                .req_str("error")
                .map_err(|e| malformed(e.to_string()))?
                .to_string(),
        })
    }
}

/// The assembled report: header plus encoded cell records sorted by
/// cell id.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Run fingerprint (hash of the matrix configuration).
    pub fingerprint: String,
    /// Human-readable canonical configuration description.
    pub config: String,
    /// `(cell_id, encoded record)` pairs, sorted by cell id.
    pub cells: Vec<(String, String)>,
    /// Cells with status `ok`.
    pub ok: u64,
    /// Cells with status `failed`.
    pub failed: u64,
}

impl MatrixReport {
    /// Assembles a report from encoded records (persisted payloads and
    /// freshly computed ones alike). Sorts by cell id and tallies
    /// statuses by parsing each record.
    pub fn assemble(
        fingerprint: String,
        config: String,
        mut cells: Vec<(String, String)>,
    ) -> Result<MatrixReport> {
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        let mut ok = 0;
        let mut failed = 0;
        for (_, payload) in &cells {
            match CellResult::parse(payload)?.status {
                CellStatus::Ok => ok += 1,
                CellStatus::Failed => failed += 1,
            }
        }
        Ok(MatrixReport {
            fingerprint,
            config,
            cells,
            ok,
            failed,
        })
    }

    /// Renders `matrix.json`: deterministic header, then the cell
    /// records verbatim in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.cells.len() * 192 + 256);
        out.push_str("{\"version\":");
        out.push_str(&MATRIX_REPORT_VERSION.to_string());
        out.push_str(",\"fingerprint\":");
        write_escaped(&mut out, &self.fingerprint);
        out.push_str(",\"config\":");
        write_escaped(&mut out, &self.config);
        out.push_str(&format!(
            ",\"n_cells\":{},\"ok\":{},\"failed\":{},\"cells\":[",
            self.cells.len(),
            self.ok,
            self.failed
        ));
        for (i, (_, payload)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(payload);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Mean squared errors of `ok` cells, keyed by cell id — the part
    /// `repro compare` gates on.
    pub fn ok_mses(&self) -> Result<Vec<(String, f64)>> {
        let mut mses = Vec::new();
        for (id, payload) in &self.cells {
            let cell = CellResult::parse(payload)?;
            if cell.status == CellStatus::Ok {
                mses.push((id.clone(), cell.mse));
            }
        }
        Ok(mses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_cell(id: &str, mse: f64) -> CellResult {
        CellResult {
            cell_id: id.to_string(),
            family: "top100".to_string(),
            window: "full".to_string(),
            window_kind: "full".to_string(),
            horizon: 7,
            status: CellStatus::Ok,
            train_rows: 400,
            test_rows: 100,
            mse,
            baseline_mse: mse * 1.5,
            error: String::new(),
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let cell = ok_cell("top100/full/h7", 0.0123456789);
        let parsed = CellResult::parse(&cell.encode()).unwrap();
        assert_eq!(parsed.cell_id, cell.cell_id);
        assert_eq!(parsed.status, CellStatus::Ok);
        assert_eq!(parsed.mse, cell.mse);
        assert_eq!(parsed.baseline_mse, cell.baseline_mse);
        assert_eq!(parsed.train_rows, 400);
    }

    #[test]
    fn failed_cells_serialize_nan_as_null_and_round_trip() {
        let cell = CellResult::failed("a/b/h1", "a", "b", "bull", 1, "window too short".into());
        let encoded = cell.encode();
        assert!(encoded.contains("\"mse\":null"), "{encoded}");
        let parsed = CellResult::parse(&encoded).unwrap();
        assert_eq!(parsed.status, CellStatus::Failed);
        assert!(parsed.mse.is_nan());
        assert_eq!(parsed.error, "window too short");
    }

    #[test]
    fn encoding_is_stable() {
        // The literal byte layout is load-bearing (resume emits stored
        // records verbatim next to freshly encoded ones).
        let encoded = ok_cell("top100/full/h7", 0.5).encode();
        assert_eq!(
            encoded,
            "{\"cell\":\"top100/full/h7\",\"family\":\"top100\",\"window\":\"full\",\
             \"window_kind\":\"full\",\"horizon\":7,\"status\":\"ok\",\
             \"train_rows\":400,\"test_rows\":100,\"mse\":0.5,\
             \"baseline_mse\":0.75,\"error\":\"\"}"
        );
    }

    #[test]
    fn report_sorts_cells_and_tallies_statuses() {
        let b = ok_cell("b", 1.0);
        let a = CellResult::failed("a", "f", "w", "bear", 1, "nope".into());
        let report = MatrixReport::assemble(
            "fp".into(),
            "cfg".into(),
            vec![("b".into(), b.encode()), ("a".into(), a.encode())],
        )
        .unwrap();
        assert_eq!(report.ok, 1);
        assert_eq!(report.failed, 1);
        assert_eq!(report.cells[0].0, "a");
        let rendered = report.render();
        assert!(rendered.starts_with("{\"version\":1,\"fingerprint\":\"fp\""));
        assert!(rendered.ends_with("\n]}\n"));
        // Render is itself parseable by the generic json module.
        let value = c100_obs::json::parse(&rendered).unwrap();
        assert_eq!(value.req_uint("n_cells").unwrap(), 2);
        let mses = report.ok_mses().unwrap();
        assert_eq!(mses, vec![("b".to_string(), 1.0)]);
    }
}
