//! Volatility indicators: Bollinger Bands, ATR, rolling standard deviation.

use crate::moving::sma;

/// Rolling population standard deviation over `window` trailing samples.
pub fn rolling_std(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be >= 1");
    crate::with_warmup(values.len(), window - 1, |t| {
        let slice = &values[t + 1 - window..=t];
        let mean = slice.iter().sum::<f64>() / window as f64;
        let var = slice.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / window as f64;
        var.sqrt()
    })
}

/// Bollinger Bands: middle SMA, upper/lower at ±k standard deviations,
/// plus bandwidth and %B position.
#[derive(Debug, Clone)]
pub struct Bollinger {
    /// Middle band (SMA).
    pub middle: Vec<f64>,
    /// Upper band.
    pub upper: Vec<f64>,
    /// Lower band.
    pub lower: Vec<f64>,
    /// Bandwidth `(upper - lower) / middle`.
    pub width: Vec<f64>,
    /// %B: position of the value within the bands (0 = lower, 1 = upper).
    pub percent_b: Vec<f64>,
}

/// Bollinger Bands with window `window` and multiplier `k` (typically 20, 2).
pub fn bollinger(values: &[f64], window: usize, k: f64) -> Bollinger {
    let middle = sma(values, window);
    let sd = rolling_std(values, window);
    let n = values.len();
    let mut upper = vec![f64::NAN; n];
    let mut lower = vec![f64::NAN; n];
    let mut width = vec![f64::NAN; n];
    let mut percent_b = vec![f64::NAN; n];
    for t in 0..n {
        if middle[t].is_nan() || sd[t].is_nan() {
            continue;
        }
        upper[t] = middle[t] + k * sd[t];
        lower[t] = middle[t] - k * sd[t];
        if middle[t] != 0.0 {
            width[t] = (upper[t] - lower[t]) / middle[t];
        }
        let span = upper[t] - lower[t];
        if span > 0.0 {
            percent_b[t] = (values[t] - lower[t]) / span;
        } else {
            percent_b[t] = 0.5;
        }
    }
    Bollinger {
        middle,
        upper,
        lower,
        width,
        percent_b,
    }
}

/// Average True Range over `period` days with Wilder's smoothing.
pub fn atr(high: &[f64], low: &[f64], close: &[f64], period: usize) -> Vec<f64> {
    assert_eq!(high.len(), low.len());
    assert_eq!(high.len(), close.len());
    assert!(period >= 1, "period must be >= 1");
    let n = close.len();
    let mut out = vec![f64::NAN; n];
    if n <= period {
        return out;
    }
    let true_range = |t: usize| -> f64 {
        let hl = high[t] - low[t];
        if t == 0 {
            hl
        } else {
            hl.max((high[t] - close[t - 1]).abs())
                .max((low[t] - close[t - 1]).abs())
        }
    };
    let mut acc = 0.0;
    for t in 1..=period {
        acc += true_range(t);
    }
    let mut prev = acc / period as f64;
    out[period] = prev;
    for (t, slot) in out.iter_mut().enumerate().take(n).skip(period + 1) {
        prev = (prev * (period - 1) as f64 + true_range(t)) / period as f64;
        *slot = prev;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_std_constant_is_zero() {
        let out = rolling_std(&[4.0; 10], 5);
        for v in out.iter().filter(|v| !v.is_nan()) {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn rolling_std_known_value() {
        // Window [2,4,4,4,5,5,7,9] has population std 2.
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let out = rolling_std(&values, 8);
        assert!((out[7] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bollinger_bands_bracket_the_series() {
        let values: Vec<f64> = (0..60)
            .map(|i| 100.0 + (i as f64 * 0.7).sin() * 5.0)
            .collect();
        let bb = bollinger(&values, 20, 2.0);
        for t in 19..60 {
            assert!(bb.upper[t] >= bb.middle[t]);
            assert!(bb.lower[t] <= bb.middle[t]);
            assert!(bb.width[t] >= 0.0);
        }
    }

    #[test]
    fn bollinger_percent_b_flat_market() {
        let bb = bollinger(&[10.0; 30], 20, 2.0);
        assert_eq!(bb.percent_b[25], 0.5);
        assert_eq!(bb.width[25], 0.0);
    }

    #[test]
    fn atr_constant_range() {
        // Every day: high-low = 2, no gaps. ATR must converge to 2.
        let high = vec![11.0; 40];
        let low = vec![9.0; 40];
        let close = vec![10.0; 40];
        let out = atr(&high, &low, &close, 14);
        assert!((out[39] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn atr_captures_gaps() {
        // A gap up beyond the daily range widens the true range.
        let mut high = vec![11.0; 30];
        let mut low = vec![9.0; 30];
        let mut close = vec![10.0; 30];
        high[20] = 31.0;
        low[20] = 29.0;
        close[20] = 30.0;
        let with_gap = atr(&high, &low, &close, 14);
        let without = atr(&vec![11.0; 30], &vec![9.0; 30], &vec![10.0; 30], 14);
        assert!(with_gap[21] > without[21]);
    }
}
