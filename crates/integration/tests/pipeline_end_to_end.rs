//! End-to-end pipeline tests across all crates.

use c100_core::dataset::assemble;
use c100_core::pipeline::{run_scenario_on, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::scenario::{build_scenario, Period};
use c100_core::{CRYPTO100, TARGET};
use c100_integration::{full_span_market, small_market};
use c100_synth::DataCategory;

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let data = small_market(201);
    let master = assemble(&data).unwrap();
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    let a = run_scenario_on(&master, &spec, &Profile::fast()).unwrap();
    let b = run_scenario_on(&master, &spec, &Profile::fast()).unwrap();
    assert_eq!(a.final_features, b.final_features);
    assert_eq!(a.fra.surviving, b.fra.surviving);
    assert_eq!(a.shap_overlap, b.shap_overlap);
}

#[test]
fn target_is_exactly_the_future_index() {
    let data = small_market(202);
    let master = assemble(&data).unwrap();
    let window = 30;
    let scenario = build_scenario(&master, Period::Y2019, window).unwrap();
    let index = scenario.frame.column(CRYPTO100).unwrap().values();
    let target = scenario.frame.column(TARGET).unwrap().values();
    for t in 0..index.len() - window {
        assert_eq!(target[t], index[t + window], "row {t}");
    }
    for tail in &target[index.len() - window..] {
        assert!(tail.is_nan(), "future beyond data must be missing");
    }
}

#[test]
fn no_feature_leaks_the_target() {
    // Pearson correlation of any *feature* with the future target must be
    // strictly below 1 — a correlation of ~1.0 would mean the target
    // leaked into the feature matrix.
    let data = small_market(203);
    let master = assemble(&data).unwrap();
    let scenario = build_scenario(&master, Period::Y2019, 30).unwrap();
    let target = scenario.frame.column(TARGET).unwrap().values().to_vec();
    for name in &scenario.feature_names {
        let col = scenario.frame.column(name).unwrap().values();
        let corr = c100_timeseries::stats::pearson(col, &target).abs();
        assert!(
            corr < 0.999,
            "{name} correlates {corr} with the future target"
        );
    }
}

#[test]
fn scenario_counts_match_paper_structure() {
    let data = full_span_market(204);
    let master = assemble(&data).unwrap();
    let s2017 = build_scenario(&master, Period::Y2017, 1).unwrap();
    let s2019 = build_scenario(&master, Period::Y2019, 1).unwrap();

    // 2019 has more candidates (USDC + late sentiment), as in the paper
    // (192 vs 283).
    assert!(
        s2019.feature_names.len() >= s2017.feature_names.len() + 60,
        "2017: {}, 2019: {}",
        s2017.feature_names.len(),
        s2019.feature_names.len()
    );
    // The paper's counts are 192/283; ours should be in that region.
    assert!(
        (150..=260).contains(&s2017.feature_names.len()),
        "{}",
        s2017.feature_names.len()
    );
    assert!(
        (230..=340).contains(&s2019.feature_names.len()),
        "{}",
        s2019.feature_names.len()
    );

    // USDC only exists in the 2019 set.
    assert!(s2017.features_of(DataCategory::OnChainUsdc).is_empty());
    assert!(!s2019.features_of(DataCategory::OnChainUsdc).is_empty());
}

#[test]
fn every_category_survives_into_both_scenario_sets() {
    let data = full_span_market(205);
    let master = assemble(&data).unwrap();
    let s2019 = build_scenario(&master, Period::Y2019, 7).unwrap();
    for cat in DataCategory::ALL {
        assert!(
            !s2019.features_of(cat).is_empty(),
            "{cat} vanished from the 2019 set"
        );
    }
    let s2017 = build_scenario(&master, Period::Y2017, 7).unwrap();
    for cat in DataCategory::ALL {
        if cat == DataCategory::OnChainUsdc {
            continue;
        }
        assert!(
            !s2017.features_of(cat).is_empty(),
            "{cat} vanished from the 2017 set"
        );
    }
}

#[test]
fn final_vector_mixes_categories() {
    // The headline claim: the selected feature vector is *diverse*.
    let data = small_market(206);
    let master = assemble(&data).unwrap();
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 30,
    };
    let result = run_scenario_on(&master, &spec, &Profile::fast()).unwrap();
    let categories: std::collections::HashSet<_> = result
        .final_features
        .iter()
        .filter_map(|f| result.scenario.categories.get(f))
        .collect();
    assert!(
        categories.len() >= 4,
        "final vector covers only {categories:?}"
    );
}
