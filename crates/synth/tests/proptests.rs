//! Property-based tests for the market simulator: determinism, structural
//! invariants and cross-seed robustness of the latent model.

use c100_synth::latent::{phi_for_half_life, simulate};
use c100_synth::regime::{label_path, segment_regimes, MarketRegime, RegimeConfig, RegimeSegment};
use c100_synth::universe::simulate_universe;
use c100_synth::{btc, SynthConfig};
use c100_timeseries::Date;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn tiny_config(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        start: Date::from_ymd(2019, 1, 1).unwrap(),
        end: Date::from_ymd(2019, 12, 31).unwrap(),
        n_assets: 110,
        warmup_days: 120,
    }
}

/// Asserts the segmentation invariants: segments tile `0..n_days` with no
/// overlap, every day lands in exactly one segment, and every segment
/// meets the minimum length unless only one segment remains.
fn assert_segments_partition(
    segments: &[RegimeSegment],
    n_days: usize,
    min_segment: usize,
) -> Result<(), TestCaseError> {
    if n_days == 0 {
        prop_assert!(segments.is_empty());
        return Ok(());
    }
    prop_assert!(!segments.is_empty());
    prop_assert_eq!(segments[0].start, 0);
    prop_assert_eq!(segments.last().unwrap().end, n_days);
    let mut covered = vec![0usize; n_days];
    for s in segments {
        prop_assert!(s.start < s.end, "empty segment {:?}", s);
        prop_assert!(s.end <= n_days);
        prop_assert!(
            s.len() >= min_segment || segments.len() == 1,
            "segment {:?} shorter than min {}",
            s,
            min_segment
        );
        for day in covered.iter_mut().take(s.end).skip(s.start) {
            *day += 1;
        }
    }
    for (day, count) in covered.iter().enumerate() {
        prop_assert!(*count == 1, "day {} labeled {} times", day, count);
    }
    // Adjacent segments never share a regime (they would be one run).
    for w in segments.windows(2) {
        prop_assert_eq!(w[0].end, w[1].start);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn phi_is_in_unit_interval(half_life in 0.5f64..1000.0) {
        let phi = phi_for_half_life(half_life);
        prop_assert!(phi > 0.0 && phi < 1.0);
        // Half-life property: phi^h = 1/2.
        prop_assert!((phi.powf(half_life) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn latents_are_finite_for_any_seed(seed in 0u64..10_000) {
        let paths = simulate(&tiny_config(seed));
        for path in [&paths.trend, &paths.cycle, &paths.momentum, &paths.adoption, &paths.log_price] {
            prop_assert!(path.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn btc_prices_positive_for_any_seed(seed in 0u64..10_000) {
        let cfg = tiny_config(seed);
        let latents = simulate(&cfg);
        let market = btc::simulate_btc(&cfg, &latents);
        prop_assert!(market.close.iter().all(|v| *v > 0.0));
        prop_assert!(market.volume.iter().all(|v| *v > 0.0));
        for t in 0..market.close.len() {
            prop_assert!(market.high[t] >= market.low[t]);
        }
    }

    #[test]
    fn universe_top100_never_exceeds_total(seed in 0u64..5_000) {
        let cfg = tiny_config(seed);
        let latents = simulate(&cfg);
        let market = btc::simulate_btc(&cfg, &latents);
        let universe = simulate_universe(&cfg, &latents, &market);
        for t in (0..universe.n_days()).step_by(30) {
            prop_assert!(universe.top100_cap[t] <= universe.total_cap[t] * (1.0 + 1e-9));
            prop_assert!(universe.top100_cap[t] > 0.0);
        }
        for share in universe.top100_share() {
            prop_assert!(share > 0.0 && share <= 1.0);
        }
    }

    #[test]
    fn simulation_is_a_pure_function_of_seed(seed in 0u64..1_000) {
        let cfg = tiny_config(seed);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn regime_segments_partition_synth_paths(seed in 0u64..5_000, min_segment in 1usize..120) {
        let cfg = tiny_config(seed);
        let latents = simulate(&cfg);
        let labels = label_path(&latents.log_price, latents.warmup, &RegimeConfig::default());
        prop_assert_eq!(labels.len(), cfg.n_days());
        let segments = segment_regimes(&labels, min_segment);
        assert_segments_partition(&segments, labels.len(), min_segment)?;
    }

    #[test]
    fn regime_segments_partition_arbitrary_paths(
        steps in prop::collection::vec(-0.2f64..0.2, 1..400),
        warmup in 0usize..50,
        lookback in 1usize..60,
        min_segment in 1usize..80,
    ) {
        // Random-walk path, warmup prefix included; degenerate flat paths
        // (all steps ~0) come out all-sideways and must still partition.
        let mut log_price = Vec::with_capacity(warmup + steps.len());
        let mut lp = 5.0;
        for _ in 0..warmup { log_price.push(lp); }
        for s in &steps { lp += s; log_price.push(lp); }
        let cfg = RegimeConfig { lookback, threshold: 0.15, min_segment };
        let labels = label_path(&log_price, warmup, &cfg);
        prop_assert_eq!(labels.len(), steps.len());
        let segments = segment_regimes(&labels, min_segment);
        assert_segments_partition(&segments, labels.len(), min_segment)?;
    }

    #[test]
    fn degenerate_all_sideways_path_is_one_segment(n in 1usize..500, warmup in 0usize..100) {
        let log_price = vec![3.25; warmup + n];
        let labels = label_path(&log_price, warmup, &RegimeConfig::default());
        prop_assert!(labels.iter().all(|&l| l == MarketRegime::Sideways));
        let segments = segment_regimes(&labels, RegimeConfig::default().min_segment);
        prop_assert_eq!(segments.len(), 1);
        prop_assert_eq!(segments[0].start, 0);
        prop_assert_eq!(segments[0].end, n);
    }

    #[test]
    fn supply_is_monotone(days in 0i32..5000) {
        let d0 = Date::from_ymd(2017, 1, 1).unwrap().add_days(days);
        let d1 = d0.add_days(1);
        prop_assert!(btc::btc_supply_on(d1) > btc::btc_supply_on(d0));
    }
}
