//! Always-on flight recorder: a bounded ring of recent span/event
//! records for post-mortem diagnosis without re-running under `--trace`.
//!
//! Producers claim a slot with one atomic `fetch_add` and then
//! `try_lock` that slot to write the record — they **never block**: if
//! the slot is momentarily held (a snapshot in progress, or a writer
//! lapped mid-write), the record is counted in [`FlightRecorder::dropped`]
//! and the producer moves on. The ring keeps the most recent
//! `capacity` records; older ones are overwritten, which is the point —
//! when a latency spike or failed rollover is noticed *after the fact*,
//! the recorder still holds the last few hundred spans around it.
//!
//! The dump ([`FlightRecorder::to_json`]) is bounded by construction:
//! `capacity` records, each with caller-bounded strings. It backs
//! `GET /debug/flight` on the server, `repro stream --flight`, and the
//! `flight.json` written on `/shutdown` or panic
//! ([`FlightRecorder::dump_to_file`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;
use crate::json::write_escaped;
use crate::RunObserver;

/// Default ring capacity (records), a power of two.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One recorded moment: what happened, when (relative to recorder
/// start), and how long it took if it was a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotonic sequence number (global across the ring's lifetime).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_micros: u64,
    /// Short static-ish kind, e.g. `"request"`, `"rollover"`, `"tick"`.
    pub kind: String,
    /// Free-form detail, e.g. `"/predict 200"`.
    pub detail: String,
    /// Span duration in microseconds, when the record is a span.
    pub micros: Option<u64>,
}

/// Bounded lock-free-for-producers ring of recent [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[Mutex<Option<FlightRecord>>]>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the [`DEFAULT_FLIGHT_CAPACITY`].
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder holding the most recent `capacity` records (rounded up
    /// to a power of two, minimum 2, so slot selection is a mask).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.next_power_of_two().max(2);
        FlightRecorder {
            start: Instant::now(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots (records retained at most).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever offered (including overwritten and dropped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records lost because their slot was momentarily contended (the
    /// producer refused to block).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one record; never blocks the caller.
    pub fn record(&self, kind: &str, detail: &str, micros: Option<u64>) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq as usize) & (self.slots.len() - 1);
        let Ok(mut guard) = self.slots[slot].try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // A slower writer that claimed an older seq for this slot may
        // arrive after us; never let it roll the slot backwards.
        if guard.as_ref().is_some_and(|r| r.seq > seq) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        *guard = Some(FlightRecord {
            seq,
            at_micros: self.start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            kind: kind.to_string(),
            detail: detail.to_string(),
            micros,
        });
    }

    /// The retained records, oldest first. Takes each slot lock briefly;
    /// concurrent producers hitting a locked slot drop (counted) rather
    /// than wait.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight slot poisoned").clone())
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Bounded JSON dump: capacity, totals, drop counter, and the
    /// retained records oldest-first.
    pub fn to_json(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(128 + 96 * records.len());
        out.push_str(&format!(
            "{{\n  \"capacity\": {},\n  \"recorded\": {},\n  \"dropped\": {},\n  \"records\": [",
            self.capacity(),
            self.recorded(),
            self.dropped()
        ));
        for (i, r) in records.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"seq\": {}, \"at_micros\": {}, \"kind\": ",
                r.seq, r.at_micros
            ));
            write_escaped(&mut out, &r.kind);
            out.push_str(", \"detail\": ");
            write_escaped(&mut out, &r.detail);
            match r.micros {
                Some(us) => out.push_str(&format!(", \"micros\": {us}}}")),
                None => out.push_str(", \"micros\": null}"),
            }
        }
        if !records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes [`FlightRecorder::to_json`] to `path` (post-mortem dump).
    pub fn dump_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    #[cfg(test)]
    fn lock_slot_for_test(&self, slot: usize) -> std::sync::MutexGuard<'_, Option<FlightRecord>> {
        self.slots[slot].lock().unwrap()
    }
}

/// As an event sink the recorder keeps the last `capacity` pipeline
/// events (rollover outcomes, artifact loads, …) in JSONL form, so a
/// flight dump explains *why* around the spans it holds.
impl RunObserver for FlightRecorder {
    fn on_event(&self, event: &Event) {
        let line = event.to_json_line();
        self.record(event.kind(), line.trim_end(), None);
    }
}

/// Installs a panic hook that dumps the recorder to `path` before the
/// previous hook (the default backtrace printer) runs. Lets a crashed
/// server or stream leave a `flight.json` behind.
pub fn install_panic_dump(recorder: std::sync::Arc<FlightRecorder>, path: std::path::PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        recorder.record("panic", &info.to_string(), None);
        let _ = recorder.dump_to_file(&path);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_most_recent_records_after_wraparound() {
        let ring = FlightRecorder::with_capacity(8);
        for i in 0..20 {
            ring.record("tick", &format!("n={i}"), Some(i));
        }
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 0);
        let records = ring.snapshot();
        assert_eq!(records.len(), 8);
        // Oldest-first, and exactly the last 8 sequence numbers.
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert_eq!(records[0].detail, "n=12");
        assert_eq!(records[7].micros, Some(19));
    }

    #[test]
    fn contended_slot_drops_instead_of_blocking() {
        let ring = FlightRecorder::with_capacity(4);
        let guard = ring.lock_slot_for_test(0);
        ring.record("a", "lands in held slot 0", None);
        ring.record("b", "slot 1, fine", None);
        drop(guard);
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.dropped(), 1);
        let records = ring.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "b");
    }

    #[test]
    fn concurrent_producers_account_for_every_record() {
        let ring = FlightRecorder::with_capacity(16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..500 {
                        ring.record("t", &format!("{t}:{i}"), None);
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 2_000);
        let records = ring.snapshot();
        assert!(records.len() <= 16);
        // Whatever survived is a set of distinct, in-range seqs.
        let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), records.len());
        assert!(seqs.iter().all(|&s| s < 2_000));
    }

    #[test]
    fn json_dump_is_bounded_and_parseable() {
        let ring = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            ring.record("req", &format!("/predict \"{i}\""), Some(100 + i));
        }
        let dump = ring.to_json();
        let value = crate::json::parse(&dump).expect("flight dump parses");
        assert_eq!(value.req_uint("capacity").unwrap(), 4);
        assert_eq!(value.req_uint("recorded").unwrap(), 10);
        assert_eq!(value.req_uint("dropped").unwrap(), 0);
        match value.get("records") {
            Some(crate::json::Value::Array(items)) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0].req_uint("seq").unwrap(), 6);
                assert_eq!(items[3].req_uint("micros").unwrap(), 109);
            }
            other => panic!("records not an array: {other:?}"),
        }
    }

    #[test]
    fn empty_ring_dumps_an_empty_record_list() {
        let ring = FlightRecorder::with_capacity(4);
        let value = crate::json::parse(&ring.to_json()).unwrap();
        match value.get("records") {
            Some(crate::json::Value::Array(items)) => assert!(items.is_empty()),
            other => panic!("records not an array: {other:?}"),
        }
    }

    #[test]
    fn observer_impl_records_event_kind_and_jsonl() {
        use crate::event::Stage;
        let ring = FlightRecorder::with_capacity(8);
        ring.on_event(&Event::StageFinished {
            scenario: "2019_7".into(),
            stage: Stage::Fra,
            micros: 1500,
        });
        let records = ring.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "stage_finished");
        assert!(records[0].detail.contains("\"micros\""));
        assert!(!records[0].detail.ends_with('\n'));
    }
}
