//! Micro-batching of `/predict` work.
//!
//! Workers hand validated prediction jobs to a single batcher thread,
//! which coalesces rows destined for the *same artifact* into one
//! [`BatchPredictor::predict_matrix`] call. A batch flushes when its
//! accumulated rows reach the configured maximum or when the oldest
//! job in it has waited out the deadline, whichever comes first — so
//! under load the server amortises per-batch overhead, and when idle a
//! lone request pays at most `max_wait` of extra latency.
//!
//! Coalescing is bit-identical to serving each request alone: the
//! ensemble predicts each row independently (`predict_row` never looks
//! at neighbouring rows), and rows are returned to each job in
//! submission order.

use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use c100_ml::data::Matrix;
use c100_obs::{FlightRecorder, HistogramHandle, MetricsRegistry, TraceCtx, Tracer};
use c100_store::BatchPredictor;

/// Histogram of rows per flushed batch (the coalesced-batch-size
/// distribution ROADMAP item 1's batcher profiling asks for).
pub const BATCH_ROWS_METRIC: &str = "serve.batch_rows";

/// Histogram of wall time per flush (matrix build + predict + replies).
pub const BATCH_FLUSH_METRIC: &str = "serve.batch_flush_micros";

/// What a worker gets back for its slice of a flushed batch.
pub type BatchReply = Result<Vec<f64>, String>;

/// One validated prediction request, ready to coalesce. The rows are
/// already schema-checked and finite; the batcher treats them as
/// opaque feature vectors of the artifact's width.
pub struct PredictJob {
    /// Content address of the model to run; the coalescing key.
    pub artifact_id: String,
    /// Scenario label, used only to tag spans.
    pub scenario: String,
    /// The predictor to run the flushed batch through.
    pub predictor: Arc<BatchPredictor>,
    /// Feature rows contributed by this job.
    pub rows: Vec<Vec<f64>>,
    /// Where the job's predictions (in row order) are sent.
    pub reply: Sender<BatchReply>,
}

struct PendingBatch {
    predictor: Arc<BatchPredictor>,
    scenario: String,
    rows: Vec<Vec<f64>>,
    /// `(reply, row_count)` per coalesced job, in arrival order.
    jobs: Vec<(Sender<BatchReply>, usize)>,
    deadline: Instant,
}

/// The batcher thread plus the sender workers submit jobs through.
pub struct Batcher {
    tx: Option<Sender<PredictJob>>,
    handle: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the batcher thread. `max_batch` is the row budget per
    /// flush; `max_wait` bounds how long the first job of a batch can
    /// sit before flushing anyway.
    pub fn start(
        max_batch: usize,
        max_wait: Duration,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Batcher {
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || {
                run(
                    rx,
                    max_batch.max(1),
                    max_wait,
                    &registry,
                    tracer.as_deref(),
                    flight.as_deref(),
                )
            })
            .expect("spawn batcher thread");
        Batcher {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A submission handle for one worker thread.
    pub fn sender(&self) -> Sender<PredictJob> {
        self.tx.as_ref().expect("batcher already shut down").clone()
    }

    /// Drops the submission side and joins the thread; pending batches
    /// are flushed, not abandoned. (Worker senders must already be
    /// dropped or the join would wait on them.)
    pub fn shutdown(mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            handle.join().expect("batcher thread panicked");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            // Best effort on an un-shutdown drop path.
            let _ = handle.join();
        }
    }
}

fn run(
    rx: Receiver<PredictJob>,
    max_batch: usize,
    max_wait: Duration,
    registry: &MetricsRegistry,
    tracer: Option<&Tracer>,
    flight: Option<&FlightRecorder>,
) {
    // Resolved once; every flush records through lock-free handles.
    let metrics = BatchMetrics {
        rows: registry.histogram(BATCH_ROWS_METRIC),
        flush_micros: registry.histogram(BATCH_FLUSH_METRIC),
    };
    let mut pending: HashMap<String, PendingBatch> = HashMap::new();
    loop {
        // Wait for the next job, but never past the oldest deadline.
        let job = match pending.values().map(|b| b.deadline).min() {
            None => match rx.recv() {
                Ok(job) => Some(job),
                Err(_) => break,
            },
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    None
                } else {
                    match rx.recv_timeout(deadline - now) {
                        Ok(job) => Some(job),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };

        match job {
            Some(job) => {
                let batch =
                    pending
                        .entry(job.artifact_id.clone())
                        .or_insert_with(|| PendingBatch {
                            predictor: job.predictor.clone(),
                            scenario: job.scenario.clone(),
                            rows: Vec::new(),
                            jobs: Vec::new(),
                            deadline: Instant::now() + max_wait,
                        });
                batch.jobs.push((job.reply, job.rows.len()));
                batch.rows.extend(job.rows);
                if batch.rows.len() >= max_batch {
                    let batch = pending.remove(&job.artifact_id).expect("just inserted");
                    flush(batch, &metrics, tracer, flight);
                }
            }
            None => {
                // Deadline expired: flush every due batch.
                let now = Instant::now();
                let due: Vec<String> = pending
                    .iter()
                    .filter(|(_, b)| b.deadline <= now)
                    .map(|(id, _)| id.clone())
                    .collect();
                for id in due {
                    let batch = pending.remove(&id).expect("key listed as due");
                    flush(batch, &metrics, tracer, flight);
                }
            }
        }
    }
    // Channel closed: flush whatever is still pending so graceful
    // shutdown never strands a waiting request.
    for (_, batch) in pending.drain() {
        flush(batch, &metrics, tracer, flight);
    }
}

/// Handles the batcher thread records flushes through.
struct BatchMetrics {
    rows: HistogramHandle,
    flush_micros: HistogramHandle,
}

fn flush(
    batch: PendingBatch,
    metrics: &BatchMetrics,
    tracer: Option<&Tracer>,
    flight: Option<&FlightRecorder>,
) {
    let n_rows = batch.rows.len();
    if n_rows == 0 {
        return;
    }
    metrics.rows.observe_micros(n_rows as u64);
    let flush_started = Instant::now();

    let span = tracer.map(|t| t.span(&batch.scenario, "serve.batch"));
    let ctx = span.as_ref().map_or(TraceCtx::disabled(), |s| s.ctx());

    let width = batch.predictor.artifact().features.len();
    let mut flat = Vec::with_capacity(n_rows * width);
    for row in &batch.rows {
        flat.extend_from_slice(row);
    }
    let result = {
        let _predict = ctx.span("serve.predict");
        Matrix::from_row_major(flat, width.max(1))
            .map_err(|e| e.to_string())
            .and_then(|m| {
                batch
                    .predictor
                    .predict_matrix(&m)
                    .map_err(|e| e.to_string())
            })
    };
    drop(span);

    let elapsed_micros = flush_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    metrics.flush_micros.observe_micros(elapsed_micros);
    if let Some(flight) = flight {
        let outcome = if result.is_ok() { "ok" } else { "error" };
        flight.record(
            "batch_flush",
            &format!(
                "{} rows={n_rows} jobs={} {outcome}",
                batch.scenario,
                batch.jobs.len()
            ),
            Some(elapsed_micros),
        );
    }

    match result {
        Ok(preds) => {
            let mut offset = 0;
            for (reply, count) in batch.jobs {
                let slice = preds[offset..offset + count].to_vec();
                offset += count;
                // A vanished receiver means the client hung up; fine.
                let _ = reply.send(Ok(slice));
            }
        }
        Err(message) => {
            for (reply, _) in batch.jobs {
                let _ = reply.send(Err(message.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Building a real predictor needs a fitted model; batcher behaviour
    // with live models is covered by the server integration tests. The
    // units here exercise scheduling-adjacent pieces that need no model.

    #[test]
    fn empty_flush_is_a_no_op() {
        let registry = Arc::new(MetricsRegistry::new());
        let batcher = Batcher::start(8, Duration::from_millis(1), registry.clone(), None, None);
        batcher.shutdown();
        // The batcher preregisters its histograms, but records nothing.
        let snap = registry.snapshot();
        assert_eq!(snap.histograms[BATCH_ROWS_METRIC].count, 0);
        assert_eq!(snap.histograms[BATCH_FLUSH_METRIC].count, 0);
    }

    #[test]
    fn batcher_preregisters_flush_histograms() {
        let registry = Arc::new(MetricsRegistry::new());
        let batcher = Batcher::start(8, Duration::from_millis(1), registry.clone(), None, None);
        batcher.shutdown();
        let snap = registry.snapshot();
        assert!(snap.histograms.contains_key(BATCH_ROWS_METRIC));
        assert!(snap.histograms.contains_key(BATCH_FLUSH_METRIC));
    }
}
