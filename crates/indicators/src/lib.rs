//! # c100-indicators
//!
//! Technical indicators derived from BTC's historical market information —
//! the paper constructs its *Technical Indicators* category exclusively
//! from Bitcoin OHLCV data, on the observation that BTC is highly
//! correlated with and influential on the broader cryptocurrency market.
//!
//! All functions take raw `&[f64]` slices and return a `Vec<f64>` of the
//! same length, with `NaN` over the warm-up prefix where the indicator is
//! undefined. [`suite`] assembles the paper's full category (moving
//! averages over close price / market cap / volume at the windows named in
//! Tables 3–4, plus the oscillator/volatility/volume indicators Section 2
//! lists) into a [`c100_timeseries::Frame`].

pub mod incremental;
pub mod momentum;
pub mod moving;
pub mod suite;
pub mod volatility;
pub mod volume;

pub use incremental::{AtrState, EmaState, RsiState, SmaState, SMA_RESYNC_TOLERANCE};
pub use suite::{technical_suite, TechnicalInputs};

/// Returns `NaN` padding followed by values from `f` starting at `start`.
pub(crate) fn with_warmup(len: usize, start: usize, mut f: impl FnMut(usize) -> f64) -> Vec<f64> {
    let mut out = vec![f64::NAN; len];
    for (t, slot) in out.iter_mut().enumerate().skip(start) {
        *slot = f(t);
    }
    out
}
