//! Sharded lock-free metric cells and the preregistered handles that
//! sit on hot paths.
//!
//! The registry facade ([`crate::MetricsRegistry`]) used to funnel
//! every `inc`/`observe_micros` through one `Mutex<BTreeMap<…>>` — on
//! an 8-worker server the metrics lock itself perturbed the latencies
//! it was measuring. This module replaces the cells under that facade:
//!
//! * [`CounterHandle`] / [`HistogramHandle`] — writes go to one of a
//!   small set of cache-line-padded shards of relaxed atomics, picked
//!   by a per-thread shard id, so concurrent writers touch different
//!   cache lines and never serialize. A write is a couple of relaxed
//!   `fetch_add`s: no lock, no hashing, no allocation.
//! * [`GaugeHandle`] — one atomic `f64`-bits cell (`set` is a plain
//!   store; `add` a CAS loop) — gauges are last-write-wins and low-rate,
//!   so sharding would only complicate aggregation.
//! * Snapshots aggregate across shards. Writers that completed before a
//!   `snapshot()` (synchronized by thread join or any other
//!   happens-before edge) are always fully counted; in-flight writers
//!   may or may not appear, which is the usual scrape semantics.
//!
//! Handles are `Clone` (`Arc` inside) and preregistered once — hot
//! paths hold the handle and never touch the registry's name maps
//! again. The facade keeps accepting string names for cold callers; it
//! resolves them through an `RwLock` read (shared, uncontended after
//! the first use of each name) rather than an exclusive mutex.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::hist::{bucket_index, N_BUCKETS};
use crate::metrics::{Bucket, HistogramSnapshot};

/// Upper bound on metric shards; the actual count is the smallest
/// power of two covering the machine's parallelism, capped here.
pub const MAX_SHARDS: usize = 16;

/// Number of shards every sharded cell uses (fixed per process).
pub fn shard_count() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        threads.next_power_of_two().clamp(1, MAX_SHARDS)
    })
}

/// The calling thread's shard, assigned round-robin on first use so
/// steady worker pools spread evenly across shards.
#[inline]
fn my_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut shard = s.get();
        if shard == usize::MAX {
            shard = NEXT.fetch_add(1, Ordering::Relaxed) % shard_count();
            s.set(shard);
        }
        shard
    })
}

/// One cache line per shard so concurrent writers never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// A monotonic counter sharded across padded atomic cells.
#[derive(Debug)]
pub(crate) struct ShardedCounter {
    shards: Box<[PaddedU64]>,
}

impl ShardedCounter {
    pub(crate) fn new() -> ShardedCounter {
        ShardedCounter {
            shards: (0..shard_count()).map(|_| PaddedU64::default()).collect(),
        }
    }

    #[inline]
    fn add(&self, delta: u64) {
        self.shards[my_shard()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// A last-write-wins gauge stored as `f64` bits in one atomic cell.
#[derive(Debug)]
pub(crate) struct AtomicGauge {
    bits: AtomicU64,
}

impl AtomicGauge {
    pub(crate) fn new() -> AtomicGauge {
        AtomicGauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    #[inline]
    fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One shard of a histogram: everything a single `observe` touches
/// lives here, so the write stays on shard-local cache lines.
#[repr(align(64))]
#[derive(Debug)]
struct HistShard {
    count: AtomicU64,
    sum_micros: AtomicU64,
    min_micros: AtomicU64,
    max_micros: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            min_micros: AtomicU64::new(u64::MAX),
            max_micros: AtomicU64::new(0),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A duration histogram sharded across padded per-thread cells, using
/// the log-linear bucket layout of [`crate::hist`].
#[derive(Debug)]
pub(crate) struct ShardedHistogram {
    shards: Box<[HistShard]>,
}

impl ShardedHistogram {
    pub(crate) fn new() -> ShardedHistogram {
        ShardedHistogram {
            shards: (0..shard_count()).map(|_| HistShard::new()).collect(),
        }
    }

    #[inline]
    fn observe(&self, micros: u64) {
        let shard = &self.shards[my_shard()];
        shard.count.fetch_add(1, Ordering::Relaxed);
        // The sum must saturate, not wrap (u64::MAX observations are
        // legal inputs), so it takes a CAS loop instead of fetch_add;
        // uncontended it costs the same, and cross-shard aggregation
        // saturates again at snapshot time.
        let mut sum = shard.sum_micros.load(Ordering::Relaxed);
        loop {
            match shard.sum_micros.compare_exchange_weak(
                sum,
                sum.saturating_add(micros),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => sum = seen,
            }
        }
        shard.min_micros.fetch_min(micros, Ordering::Relaxed);
        shard.max_micros.fetch_max(micros, Ordering::Relaxed);
        shard.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut buckets = vec![0u64; N_BUCKETS];
        for shard in self.shards.iter() {
            count += shard.count.load(Ordering::Relaxed);
            sum = sum.saturating_add(shard.sum_micros.load(Ordering::Relaxed));
            min = min.min(shard.min_micros.load(Ordering::Relaxed));
            max = max.max(shard.max_micros.load(Ordering::Relaxed));
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot {
            count,
            sum_micros: sum,
            min_micros: if count == 0 { 0 } else { min },
            max_micros: max,
            buckets: buckets
                .iter()
                .enumerate()
                .map(|(i, &c)| Bucket {
                    le_micros: crate::hist::bucket_le_micros(i),
                    count: c,
                })
                .collect(),
        }
    }
}

/// Preregistered handle to a counter: `inc`/`add` are a relaxed
/// `fetch_add` on a thread-local shard — no lock, no name lookup.
#[derive(Debug, Clone)]
pub struct CounterHandle(pub(crate) Arc<ShardedCounter>);

impl CounterHandle {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.add(delta);
    }

    /// Aggregated value across shards.
    pub fn value(&self) -> u64 {
        self.0.value()
    }
}

/// Preregistered handle to a gauge: `set` is a relaxed atomic store.
#[derive(Debug, Clone)]
pub struct GaugeHandle(pub(crate) Arc<AtomicGauge>);

impl GaugeHandle {
    /// Sets the instantaneous value (last write wins).
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.set(value);
    }

    /// Adjusts the value by `delta` (CAS loop; used by in-flight style
    /// gauges that increment on entry and decrement on exit).
    #[inline]
    pub fn add(&self, delta: f64) {
        self.0.add(delta);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.0.value()
    }
}

/// Preregistered handle to a histogram: `observe` is a handful of
/// relaxed atomic ops on a thread-local shard.
#[derive(Debug, Clone)]
pub struct HistogramHandle(pub(crate) Arc<ShardedHistogram>);

impl HistogramHandle {
    /// Records one duration observation in microseconds.
    #[inline]
    pub fn observe_micros(&self, micros: u64) {
        self.0.observe(micros);
    }

    /// Records one [`Duration`] observation.
    #[inline]
    pub fn observe(&self, duration: Duration) {
        self.observe_micros(duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Aggregated snapshot across shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_aggregates_across_threads_without_lost_updates() {
        let counter = CounterHandle(Arc::new(ShardedCounter::new()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 80_000);
    }

    #[test]
    fn histogram_totals_equal_per_thread_contributions() {
        let hist = HistogramHandle(Arc::new(ShardedHistogram::new()));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let hist = hist.clone();
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        hist.observe_micros(t * 1_000 + i % 997);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count, 40_000);
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, snap.count);
        let exact_sum: u64 = (0..8u64)
            .flat_map(|t| (0..5_000u64).map(move |i| t * 1_000 + i % 997))
            .sum();
        assert_eq!(snap.sum_micros, exact_sum);
        assert_eq!(snap.min_micros, 0);
        assert_eq!(snap.max_micros, 7_996);
    }

    #[test]
    fn gauge_set_and_add_agree() {
        let gauge = GaugeHandle(Arc::new(AtomicGauge::new()));
        gauge.set(4.0);
        gauge.add(2.5);
        gauge.add(-1.5);
        assert_eq!(gauge.value(), 5.0);
    }

    #[test]
    fn gauge_add_survives_contention() {
        let gauge = GaugeHandle(Arc::new(AtomicGauge::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let gauge = gauge.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        gauge.add(1.0);
                        gauge.add(-1.0);
                    }
                });
            }
        });
        assert_eq!(gauge.value(), 0.0);
    }

    #[test]
    fn shard_count_is_a_power_of_two_within_bounds() {
        let n = shard_count();
        assert!(n.is_power_of_two());
        assert!((1..=MAX_SHARDS).contains(&n));
    }
}
