//! Acceptor, worker pool, routing, and graceful shutdown.
//!
//! Thread topology:
//!
//! ```text
//! acceptor ──try_push──▶ BoundedQueue<TcpStream> ──pop──▶ worker × N
//!                │ (full)                                   │
//!                ▼                                          ├─▶ direct predict   (batching off)
//!            503 + Retry-After                              └─▶ batcher thread   (batching on)
//! ```
//!
//! Each connection carries exactly one request (`Connection: close`),
//! which keeps the framing trivial and makes load shedding precise:
//! a queue slot is a whole request. Shutdown is graceful by
//! construction — the acceptor stops accepting, workers drain what the
//! queue already holds, the batcher flushes pending rows, and only
//! then do threads join.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use c100_obs::json::{self, Value};
use c100_obs::{FlightRecorder, MetricsRegistry, Tracer};
use c100_store::{BatchPredictor, Engine, StoreError};

use crate::batcher::{Batcher, PredictJob};
use crate::cache::ModelCache;
use crate::http::{self, HttpError, Method, Request, RequestParser, Response};
use crate::queue::{BoundedQueue, TryPushError};
use crate::telemetry::{InflightGuard, ServeMetrics};
use crate::{Result, ServeError};

/// Server construction parameters; every knob has a serviceable
/// default so `ServeConfig::new(dir, addr)` is a working server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Artifact store directory to serve models from.
    pub store_dir: PathBuf,
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it requests shed 503.
    pub queue_depth: usize,
    /// Row budget per coalesced batch; `<= 1` disables micro-batching
    /// and workers predict directly.
    pub max_batch: usize,
    /// Longest a queued `/predict` row waits for batch-mates.
    pub max_wait: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Inference engine predictors are built with (bit-identical
    /// either way; `POST /reload` can override it at runtime).
    pub engine: Engine,
    /// Where to dump the flight recorder on shutdown (`None` skips the
    /// file; `GET /debug/flight` works regardless).
    pub flight_path: Option<PathBuf>,
}

impl ServeConfig {
    /// A config with default sizing for the given store and address.
    pub fn new(store_dir: impl Into<PathBuf>, addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            store_dir: store_dir.into(),
            addr: addr.into(),
            workers: 4,
            queue_depth: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            engine: Engine::default(),
            flight_path: None,
        }
    }
}

/// Everything worker/acceptor threads share.
struct Shared {
    cache: ModelCache,
    /// Connections waiting for a worker, each with its accept time so
    /// queue-wait is measurable at pop.
    queue: BoundedQueue<(TcpStream, Instant)>,
    registry: Arc<MetricsRegistry>,
    /// Handles preregistered at startup — the request path records
    /// through these, never through the registry's by-name API.
    metrics: ServeMetrics,
    /// Always-on ring of recent request/shed/reload records.
    flight: Arc<FlightRecorder>,
    flight_path: Option<PathBuf>,
    tracer: Option<Arc<Tracer>>,
    shutdown: AtomicBool,
    /// Signalled when any party requests shutdown; `wait` blocks here.
    shutdown_requested: (Mutex<bool>, Condvar),
    max_body_bytes: usize,
    max_batch: usize,
    /// When the served model set last changed (start or `POST /reload`);
    /// `/metrics` derives the `serve.model_age_seconds` gauge from it.
    models_loaded_at: Mutex<Instant>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cv) = &self.shutdown_requested;
        *lock.lock().expect("shutdown flag poisoned") = true;
        cv.notify_all();
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared with all threads).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        self.shared.registry.clone()
    }

    /// The server's flight recorder (shared with all threads); useful
    /// for dumping post-mortems from the embedding process.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        self.shared.flight.clone()
    }

    /// Flags shutdown without blocking; `wait`/`shutdown` perform the
    /// actual drain and join.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
        wake_acceptor(self.addr);
    }

    /// Blocks until shutdown is requested (by [`Self::request_shutdown`]
    /// or `POST /shutdown`), then drains and joins everything.
    pub fn wait(mut self) {
        let (lock, cv) = &self.shared.shutdown_requested;
        let mut requested = lock.lock().expect("shutdown flag poisoned");
        while !*requested {
            requested = cv.wait(requested).expect("shutdown flag poisoned");
        }
        drop(requested);
        wake_acceptor(self.addr);
        self.join_all();
    }

    /// Requests shutdown and blocks until the server is fully drained.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        // Order matters: stop intake, drain the queue, then let the
        // batcher flush what the workers submitted.
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(batcher) = self.batcher.take() {
            batcher.shutdown();
        }
        self.shared.metrics.queue_depth.set(0.0);
        if let Some(path) = &self.shared.flight_path {
            if let Err(e) = self.shared.flight.dump_to_file(path) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shared.request_shutdown();
            wake_acceptor(self.addr);
            self.join_all();
        }
    }
}

/// Unblocks a listener stuck in `accept` by dialing it once.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

/// The inference server; [`start`](Server::start) is the entry point.
pub struct Server;

impl Server {
    /// Binds, spawns acceptor/workers/batcher, and returns a handle.
    /// The registry and tracer are shared so callers can render
    /// `/metrics` or dump spans after shutdown.
    pub fn start(
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<ServerHandle> {
        if config.workers == 0 {
            return Err(ServeError::Config("workers must be >= 1".into()));
        }
        // Predictors built by the cache report BatchPredicted events
        // into this registry, so the ml predict path shares the same
        // lock-free histograms as the HTTP layer.
        let cache = ModelCache::open(&config.store_dir)?
            .with_engine(config.engine)
            .with_observer(registry.clone());
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            cache,
            queue: BoundedQueue::new(config.queue_depth),
            registry: registry.clone(),
            metrics: ServeMetrics::preregister(&registry),
            flight: Arc::new(FlightRecorder::new()),
            flight_path: config.flight_path.clone(),
            tracer: tracer.clone(),
            shutdown: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
            max_body_bytes: config.max_body_bytes,
            max_batch: config.max_batch,
            models_loaded_at: Mutex::new(Instant::now()),
        });
        registry.set_gauge("serve.last_reload_timestamp_seconds", unix_now_seconds());

        let batcher = if config.max_batch > 1 {
            Some(Batcher::start(
                config.max_batch,
                config.max_wait,
                registry,
                tracer,
                Some(shared.flight.clone()),
            ))
        } else {
            None
        };

        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                let batch_tx = batcher.as_ref().map(|b| b.sender());
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, batch_tx))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>>>()?;

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .map_err(ServeError::Io)?
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            batcher,
        })
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // This is (or raced with) the shutdown wake-up dial.
            return;
        }
        let _span = shared
            .tracer
            .as_deref()
            .map(|t| t.span("serve", "serve.accept"));
        match shared.queue.try_push((stream, Instant::now())) {
            Ok(depth) => shared.metrics.queue_depth.set(depth as f64),
            Err(TryPushError::Full((stream, _))) => {
                // Count synchronously so /metrics is exact, but write the
                // 503 off-thread: draining a slow client must not stall
                // the accept loop. Shed threads are short-lived (500ms
                // timeouts) and bounded by the accept rate.
                shared.metrics.sheds.inc();
                shared.metrics.responses_5xx.inc();
                shared.flight.record("shed", "queue full, 503", None);
                std::thread::spawn(move || shed(stream));
            }
            Err(TryPushError::Closed(_)) => return,
        }
    }
}

/// Load-shed: answer `503` with `Retry-After` straight from the
/// acceptor so a saturated worker pool cannot delay the signal.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let resp = Response::error_json(503, "server is at capacity, retry shortly")
        .with_header("Retry-After", "1");
    if resp.write_to(&mut stream).is_err() {
        return;
    }
    // Closing with unread request bytes in the receive buffer makes the
    // kernel send RST, which can destroy the 503 before the client reads
    // it. Signal end-of-response, then drain (bounded) until the client's
    // FIN so the close is graceful.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn worker_loop(shared: &Shared, batch_tx: Option<Sender<PredictJob>>) {
    while let Some((stream, enqueued_at)) = shared.queue.pop() {
        shared.metrics.queue_depth.set(shared.queue.len() as f64);
        shared.metrics.queue_wait.observe(enqueued_at.elapsed());
        handle_connection(shared, batch_tx.as_ref(), stream);
    }
}

fn handle_connection(
    shared: &Shared,
    batch_tx: Option<&Sender<PredictJob>>,
    mut stream: TcpStream,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);

    let _inflight = InflightGuard::enter(&shared.metrics.inflight);
    let accepted = Instant::now();
    let request = {
        let _span = shared
            .tracer
            .as_deref()
            .map(|t| t.span("serve", "serve.parse"));
        match read_request(shared, &mut stream) {
            Ok(Some(request)) => request,
            Ok(None) => return, // peer went away before a full request
            Err(e) => {
                shared.metrics.requests_total.inc();
                shared.metrics.responses_4xx.inc();
                shared.flight.record("bad_request", &e.to_string(), None);
                let _ = Response::error_json(e.status(), &e.to_string()).write_to(&mut stream);
                return;
            }
        }
    };

    let started = Instant::now();
    // A panic in a handler must not take the worker down with it.
    let routed = catch_unwind(AssertUnwindSafe(|| route(shared, batch_tx, &request)));
    let (endpoint, response) = routed.unwrap_or_else(|_| {
        (
            "panic",
            Response::error_json(500, "internal server error: handler panicked"),
        )
    });

    let handler_elapsed = started.elapsed();
    let endpoint_metrics = shared.metrics.endpoint(endpoint);
    shared.metrics.requests_total.inc();
    endpoint_metrics.requests.inc();
    shared.metrics.response_class(response.status).inc();
    endpoint_metrics.handler_micros.observe(handler_elapsed);
    endpoint_metrics.request_micros.observe(accepted.elapsed());
    shared.flight.record(
        "request",
        &format!("{endpoint} {}", response.status),
        Some(handler_elapsed.as_micros().min(u64::MAX as u128) as u64),
    );
    let _ = response.write_to(&mut stream);
}

/// Reads one request off the socket. `Ok(None)` means the peer closed
/// (or timed out) before completing a request — nothing to answer.
fn read_request(
    shared: &Shared,
    stream: &mut TcpStream,
) -> std::result::Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new(shared.max_body_bytes);
    let mut buf = [0u8; 8 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                if parser.buffered() > 0 {
                    return Err(HttpError::BadRequest(
                        "connection closed mid-request".into(),
                    ));
                }
                return Ok(None);
            }
            Ok(n) => {
                if let Some(request) = parser.push(&buf[..n])? {
                    return Ok(Some(request));
                }
            }
            Err(_) => return Ok(None),
        }
    }
}

fn route(
    shared: &Shared,
    batch_tx: Option<&Sender<PredictJob>>,
    request: &Request,
) -> (&'static str, Response) {
    match (request.method, request.path()) {
        (Method::Get, "/healthz") => ("healthz", healthz(shared)),
        (Method::Get, "/models") => ("models", models(shared)),
        (Method::Get, "/metrics") => ("metrics", metrics(shared)),
        (Method::Get, "/debug/flight") => ("flight", flight(shared)),
        (Method::Post, "/predict") => ("predict", predict(shared, batch_tx, request)),
        (Method::Post, "/reload") => ("reload", reload(shared, request)),
        (Method::Post, "/shutdown") => ("shutdown", shutdown(shared)),
        (_, path @ ("/healthz" | "/models" | "/metrics" | "/debug/flight")) => (
            "other",
            Response::error_json(405, &format!("{path} only supports GET"))
                .with_header("Allow", "GET"),
        ),
        (_, path @ ("/predict" | "/reload" | "/shutdown")) => (
            "other",
            Response::error_json(405, &format!("{path} only supports POST"))
                .with_header("Allow", "POST"),
        ),
        (_, path) => (
            "other",
            Response::error_json(404, &format!("no such endpoint: {path}")),
        ),
    }
}

fn healthz(shared: &Shared) -> Response {
    let mut body = String::from("{\"status\":\"ok\",\"models\":");
    body.push_str(&shared.cache.entries().len().to_string());
    body.push_str("}\n");
    Response::json(200, body)
}

fn models(shared: &Shared) -> Response {
    let entries = shared.cache.entries();
    let mut body = String::from("{\"models\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"id\":");
        json::write_escaped(&mut body, &e.id);
        body.push_str(",\"scenario\":");
        json::write_escaped(&mut body, &e.scenario);
        body.push_str(",\"model\":");
        json::write_escaped(&mut body, &e.model);
        body.push_str(",\"engine\":");
        json::write_escaped(&mut body, &shared.cache.active_engine(&e.id).label());
        body.push_str(&format!(",\"bytes\":{},\"seq\":{}}}", e.bytes, e.seq));
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

/// `GET /debug/flight`: the flight recorder's bounded JSON dump —
/// recent requests, sheds, reloads, and batch flushes with timings.
fn flight(shared: &Shared) -> Response {
    Response::json(200, shared.flight.to_json())
}

fn metrics(shared: &Shared) -> Response {
    // Freshness is computed at scrape time so the gauge ages between
    // reloads without a background ticker.
    let age = shared
        .models_loaded_at
        .lock()
        .expect("models_loaded_at poisoned")
        .elapsed();
    shared
        .registry
        .set_gauge("serve.model_age_seconds", age.as_secs_f64());
    Response::text(200, shared.registry.snapshot().to_text())
}

/// Seconds since the unix epoch, for the last-reload timestamp gauge.
fn unix_now_seconds() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn reload(shared: &Shared, request: &Request) -> Response {
    let engine = match parse_reload_body(&request.body) {
        Ok(engine) => engine,
        Err(message) => return Response::error_json(400, &message),
    };
    match shared.cache.reload(engine) {
        Ok(new_ids) => {
            shared.registry.inc("serve.reloads_total");
            shared.flight.record(
                "reload",
                &format!(
                    "engine={} new_artifacts={}",
                    shared.cache.engine().label(),
                    new_ids.len()
                ),
                None,
            );
            shared
                .registry
                .set_gauge("serve.last_reload_timestamp_seconds", unix_now_seconds());
            *shared
                .models_loaded_at
                .lock()
                .expect("models_loaded_at poisoned") = Instant::now();
            let mut body = String::from("{\"engine\":");
            json::write_escaped(&mut body, &shared.cache.engine().label());
            body.push_str(",\"new_artifacts\":[");
            for (i, id) in new_ids.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                json::write_escaped(&mut body, id);
            }
            body.push_str("]}\n");
            Response::json(200, body)
        }
        Err(e) => Response::error_json(500, &format!("reload failed: {e}")),
    }
}

/// Optional `POST /reload` body: `{"engine":"interpreted"|"compiled"}`
/// switches the engine newly built predictors use. An empty body (the
/// common case) keeps the current engine.
fn parse_reload_body(body: &[u8]) -> std::result::Result<Option<Engine>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    let value = json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    match value.get("engine") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Engine::parse(s)
            .map(Some)
            .ok_or_else(|| format!("unknown engine '{s}' (expected 'interpreted' or 'compiled')")),
        Some(_) => Err("'engine' must be a string".to_string()),
    }
}

fn shutdown(shared: &Shared) -> Response {
    shared.flight.record("shutdown", "POST /shutdown", None);
    shared.request_shutdown();
    Response::json(200, "{\"status\":\"shutting down\"}\n".to_string())
}

/// Parsed body of `POST /predict`.
struct PredictRequest {
    artifact: Option<String>,
    scenario: Option<String>,
    model: Option<String>,
    columns: Option<Vec<String>>,
    rows: Vec<Vec<f64>>,
}

fn predict(shared: &Shared, batch_tx: Option<&Sender<PredictJob>>, request: &Request) -> Response {
    let parsed = match parse_predict_body(&request.body) {
        Ok(parsed) => parsed,
        Err(message) => return Response::error_json(400, &message),
    };

    // Resolve which artifact to run.
    let entry = if let Some(id) = &parsed.artifact {
        match shared.cache.entry(id) {
            Some(entry) => entry,
            None => return Response::error_json(404, &format!("no artifact with id '{id}'")),
        }
    } else if let Some(scenario) = &parsed.scenario {
        match shared
            .cache
            .resolve_latest(scenario, parsed.model.as_deref())
        {
            Some(entry) => entry,
            None => {
                let family = parsed.model.as_deref().unwrap_or("any");
                return Response::error_json(
                    404,
                    &format!("no artifact for scenario '{scenario}' (family: {family})"),
                );
            }
        }
    } else {
        return Response::error_json(400, "body must name either 'artifact' or 'scenario'");
    };

    let predictor = match shared.cache.predictor(&entry.id) {
        Ok(predictor) => predictor,
        Err(e) => return Response::error_json(500, &format!("failed to load artifact: {e}")),
    };

    // Validate against the stored schema *before* coalescing so batch
    // errors can only ever be infrastructure faults, and schema errors
    // carry the exhaustive column diagnosis verbatim.
    if let Some(columns) = &parsed.columns {
        let names: Vec<&str> = columns.iter().map(String::as_str).collect();
        if let Err(e) = predictor.validate_columns(&names) {
            let message = match e {
                StoreError::Schema(schema) => schema.to_string(),
                other => other.to_string(),
            };
            return Response::error_json(400, &message);
        }
    }
    let width = predictor.artifact().features.len();
    for (i, row) in parsed.rows.iter().enumerate() {
        if row.len() != width {
            return Response::error_json(
                400,
                &format!(
                    "row {i} has {} values, the model's schema has {width} features",
                    row.len()
                ),
            );
        }
        if let Some(c) = row.iter().position(|v| !v.is_finite()) {
            return Response::error_json(
                400,
                &format!(
                    "row {i} has a non-finite value in column '{}'",
                    predictor.artifact().features[c]
                ),
            );
        }
    }
    if parsed.rows.is_empty() {
        return Response::error_json(400, "'rows' must contain at least one row");
    }

    let forecasts = match batch_tx {
        Some(tx) if shared.max_batch > 1 => {
            match predict_batched(shared, tx, &entry.id, predictor.clone(), parsed.rows) {
                Ok(forecasts) => forecasts,
                Err(message) => return Response::error_json(500, &message),
            }
        }
        _ => {
            let span = shared
                .tracer
                .as_deref()
                .map(|t| t.span(&predictor.artifact().scenario, "serve.predict"));
            let result = rows_to_forecasts(&predictor, parsed.rows);
            drop(span);
            match result {
                Ok(forecasts) => forecasts,
                Err(message) => return Response::error_json(500, &message),
            }
        }
    };

    let artifact = predictor.artifact();
    let mut body = String::with_capacity(64 + forecasts.len() * 20);
    body.push_str("{\"artifact\":");
    json::write_escaped(&mut body, &entry.id);
    body.push_str(",\"scenario\":");
    json::write_escaped(&mut body, &artifact.scenario);
    body.push_str(",\"model\":");
    json::write_escaped(&mut body, artifact.model.family());
    body.push_str(&format!(",\"rows\":{},\"forecasts\":[", forecasts.len()));
    for (i, v) in forecasts.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        // `Display` formatting, matching the CLI's forecast CSV exactly
        // so `/predict` output diffs clean against `repro predict`.
        body.push_str(&format!("{v}"));
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

/// Direct (unbatched) prediction on the worker thread.
fn rows_to_forecasts(
    predictor: &BatchPredictor,
    rows: Vec<Vec<f64>>,
) -> std::result::Result<Vec<f64>, String> {
    let width = predictor.artifact().features.len().max(1);
    let mut flat = Vec::with_capacity(rows.len() * width);
    for row in &rows {
        flat.extend_from_slice(row);
    }
    c100_ml::data::Matrix::from_row_major(flat, width)
        .map_err(|e| e.to_string())
        .and_then(|m| predictor.predict_matrix(&m).map_err(|e| e.to_string()))
}

/// Hands rows to the batcher and waits for this job's slice.
fn predict_batched(
    shared: &Shared,
    tx: &Sender<PredictJob>,
    artifact_id: &str,
    predictor: Arc<BatchPredictor>,
    rows: Vec<Vec<f64>>,
) -> std::result::Result<Vec<f64>, String> {
    let scenario = predictor.artifact().scenario.clone();
    let (reply_tx, reply_rx) = mpsc::channel();
    tx.send(PredictJob {
        artifact_id: artifact_id.to_string(),
        scenario,
        predictor,
        rows,
        reply: reply_tx,
    })
    .map_err(|_| "batcher is shut down".to_string())?;
    // The batcher always answers (flush-on-drop included); the timeout
    // is a last-ditch guard against a wedged thread, not a code path.
    match reply_rx.recv_timeout(Duration::from_secs(60)) {
        Ok(reply) => reply,
        Err(_) => {
            shared.registry.inc("serve.batch_reply_timeouts");
            Err("timed out waiting for batched prediction".to_string())
        }
    }
}

fn parse_predict_body(body: &[u8]) -> std::result::Result<PredictRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body; expected a JSON object".to_string());
    }
    let value = json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;

    let opt_str = |key: &str| -> std::result::Result<Option<String>, String> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::String(s)) => Ok(Some(s.clone())),
            Some(_) => Err(format!("'{key}' must be a string")),
        }
    };
    let artifact = opt_str("artifact")?;
    let scenario = opt_str("scenario")?;
    let model = opt_str("model")?;

    let columns = match value.get("columns") {
        None | Some(Value::Null) => None,
        Some(Value::Array(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::String(s) => names.push(s.clone()),
                    _ => return Err("'columns' must be an array of strings".to_string()),
                }
            }
            Some(names)
        }
        Some(_) => return Err("'columns' must be an array of strings".to_string()),
    };

    let rows = match value.get("rows") {
        Some(Value::Array(items)) => {
            let mut rows = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let Value::Array(cells) = item else {
                    return Err(format!("'rows[{i}]' must be an array of numbers"));
                };
                let mut row = Vec::with_capacity(cells.len());
                for cell in cells {
                    match cell {
                        Value::Number(v) => row.push(*v),
                        _ => {
                            return Err(format!("'rows[{i}]' must contain only numbers (no nulls)"))
                        }
                    }
                }
                rows.push(row);
            }
            rows
        }
        _ => return Err("'rows' must be an array of arrays of numbers".to_string()),
    };

    Ok(PredictRequest {
        artifact,
        scenario,
        model,
        columns,
        rows,
    })
}
