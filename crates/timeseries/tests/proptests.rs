//! Property-based tests for the time-series substrate.

use c100_timeseries::{clean, csv, date::Date, missing, stats, transform, Frame, Series};
use proptest::prelude::*;

/// Strategy: a vector of finite values with some NaN holes.
fn gappy_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            3 => (-1.0e6f64..1.0e6).prop_map(|v| v),
            1 => Just(f64::NAN),
        ],
        1..max_len,
    )
}

fn finite_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 2..max_len)
}

proptest! {
    #[test]
    fn interpolation_preserves_present_values(values in gappy_values(60)) {
        let mut series = Series::new("x", values.clone());
        missing::interpolate(&mut series);
        for (before, after) in values.iter().zip(series.values()) {
            if !before.is_nan() {
                prop_assert_eq!(*before, *after);
            }
        }
    }

    #[test]
    fn interpolation_fills_within_bounds(values in gappy_values(60)) {
        let mut series = Series::new("x", values.clone());
        missing::interpolate(&mut series);
        let lo = stats::min(&values);
        let hi = stats::max(&values);
        for v in series.values().iter().filter(|v| !v.is_nan()) {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
        }
    }

    #[test]
    fn interpolation_never_unfills_edges(values in gappy_values(60)) {
        let mut series = Series::new("x", values.clone());
        let first = series.first_present();
        let last = series.last_present();
        missing::interpolate(&mut series);
        prop_assert_eq!(series.first_present(), first);
        prop_assert_eq!(series.last_present(), last);
    }

    #[test]
    fn forward_fill_leaves_no_gaps_after_first(values in gappy_values(60)) {
        let mut series = Series::new("x", values);
        let first = series.first_present();
        missing::forward_fill(&mut series);
        if let Some(first) = first {
            for v in &series.values()[first..] {
                prop_assert!(!v.is_nan());
            }
        }
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        a in finite_values(50),
        b in finite_values(50),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let r = stats::pearson(a, b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        let r2 = stats::pearson(b, a);
        prop_assert!((r - r2).abs() < 1e-9);
    }

    #[test]
    fn pearson_scale_invariant(a in finite_values(50), scale in 0.1f64..100.0, shift in -1000.0f64..1000.0) {
        let b: Vec<f64> = a.iter().map(|v| v * scale + shift).collect();
        let r = stats::pearson(&a, &b);
        // Either degenerate (constant input) or perfectly correlated.
        prop_assert!(r == 0.0 || (r - 1.0).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn quantile_is_monotone(values in finite_values(50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::quantile(&values, lo) <= stats::quantile(&values, hi) + 1e-9);
    }

    #[test]
    fn scaler_round_trips(values in finite_values(40)) {
        let mut frame = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), values.len());
        frame.push_column(Series::new("x", values.clone())).unwrap();
        let scaler = transform::StandardScaler::fit(&frame);
        scaler.transform(&mut frame).unwrap();
        let mut back = frame.column("x").unwrap().values().to_vec();
        scaler.inverse_transform_column("x", &mut back).unwrap();
        for (orig, restored) in values.iter().zip(&back) {
            prop_assert!((orig - restored).abs() < 1e-6 * (1.0 + orig.abs()));
        }
    }

    #[test]
    fn future_target_then_lag_is_identity_in_the_middle(values in finite_values(40), k in 1usize..10) {
        let series = Series::new("x", values.clone());
        let shifted = transform::future_target(&series, k);
        let back = transform::lag(&shifted, k);
        let middle = values.get(k..values.len().saturating_sub(k)).unwrap_or(&[]);
        for (t, &expected) in middle.iter().enumerate() {
            prop_assert_eq!(back.values()[k + t], expected);
        }
    }

    #[test]
    fn date_round_trip(days in -200_000i32..200_000) {
        let d = Date::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
        prop_assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn date_add_days_is_consistent(days in -100_000i32..100_000, delta in -5000i32..5000) {
        let d = Date::from_days(days);
        let moved = d.add_days(delta);
        prop_assert_eq!(moved.days_between(d), delta);
    }

    #[test]
    fn csv_round_trip(values in gappy_values(40)) {
        let mut frame = Frame::with_daily_index(Date::from_ymd(2021, 6, 1).unwrap(), values.len());
        frame.push_column(Series::new("col", values.clone())).unwrap();
        let mut buf = Vec::new();
        csv::write_frame(&frame, &mut buf).unwrap();
        let parsed = csv::read_frame(std::io::BufReader::new(&buf[..])).unwrap();
        let restored = parsed.column("col").unwrap().values();
        prop_assert_eq!(restored.len(), values.len());
        for (a, b) in values.iter().zip(restored) {
            if a.is_nan() {
                prop_assert!(b.is_nan());
            } else {
                prop_assert_eq!(*a, *b);
            }
        }
    }

    #[test]
    fn clean_never_drops_protected(values in gappy_values(50)) {
        let mut frame = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), values.len());
        frame.push_column(Series::new("target", values)).unwrap();
        let config = clean::CleanConfig {
            max_missing_run: 0,
            max_flat_run: 0,
            max_missing_fraction: 0.0,
        };
        clean::clean_frame(&mut frame, &config, &["target"]);
        prop_assert!(frame.has_column("target"));
    }

    #[test]
    fn longest_flat_run_at_most_len(values in gappy_values(50)) {
        let series = Series::new("x", values);
        prop_assert!(series.longest_flat_run() <= series.len());
        prop_assert!(series.longest_missing_run() <= series.len());
    }
}
