//! The paper's full Technical Indicators category as one frame.
//!
//! Names reproduce the paper's (slightly inconsistent) conventions from
//! Tables 3–4: exponential averages are `EMA{w}_{variable}` while simple
//! averages are `SMA_{w}_{variable}`, with variables `close-price`,
//! `market-cap` and `volume`.
//!
//! The category is deliberately split between *level-tracking* moving
//! averages (strong at every horizon because the target is a future price
//! level) and *stationary oscillators* (RSI, ROC, stochastic, bandwidth,
//! volatility) that only inform short-horizon moves — which is why the
//! paper sees the category's contribution fade on long windows.

use c100_timeseries::{Date, Frame, Series};

use crate::momentum::{macd, momentum, roc, rsi, stochastic};
use crate::moving::{ema, sma, wma};
use crate::volatility::{atr, bollinger, rolling_std};
use crate::volume::{cmf, obv, volume_ratio};

/// EMA spans computed for close price and market cap (the windows seen in
/// the paper's tables).
pub const EMA_WINDOWS: [usize; 8] = [5, 10, 14, 20, 30, 50, 100, 200];
/// EMA spans computed for volume (Table 4 lists EMA10/100/200_volume).
pub const EMA_VOLUME_WINDOWS: [usize; 3] = [10, 100, 200];
/// SMA windows for close price and market cap.
pub const SMA_WINDOWS: [usize; 5] = [5, 10, 20, 30, 50];
/// SMA windows for volume.
pub const SMA_VOLUME_WINDOWS: [usize; 2] = [10, 50];

/// Raw BTC market inputs the technical suite is computed from.
#[derive(Debug, Clone)]
pub struct TechnicalInputs {
    /// First day of all slices.
    pub start: Date,
    /// Daily close price.
    pub close: Vec<f64>,
    /// Daily high.
    pub high: Vec<f64>,
    /// Daily low.
    pub low: Vec<f64>,
    /// Daily traded volume.
    pub volume: Vec<f64>,
    /// Daily market capitalization.
    pub market_cap: Vec<f64>,
}

impl TechnicalInputs {
    fn check(&self) -> Result<(), String> {
        let n = self.close.len();
        if n == 0 {
            return Err("empty inputs".into());
        }
        for (name, v) in [
            ("high", &self.high),
            ("low", &self.low),
            ("volume", &self.volume),
            ("market_cap", &self.market_cap),
        ] {
            if v.len() != n {
                return Err(format!("{name} has {} samples, close has {n}", v.len()));
            }
        }
        Ok(())
    }
}

/// Computes the complete technical category. The returned frame has one
/// column per indicator; warm-up prefixes are `NaN`.
pub fn technical_suite(inputs: &TechnicalInputs) -> Result<Frame, String> {
    inputs.check()?;
    let n = inputs.close.len();
    let mut frame = Frame::with_daily_index(inputs.start, n);
    let push = |frame: &mut Frame, name: String, values: Vec<f64>| {
        frame
            .push_column(Series::new(name, values))
            .expect("suite names are unique and lengths match");
    };

    // --- Level-tracking moving averages -----------------------------------
    for (var_name, values) in [
        ("close-price", &inputs.close),
        ("market-cap", &inputs.market_cap),
    ] {
        for w in EMA_WINDOWS {
            push(&mut frame, format!("EMA{w}_{var_name}"), ema(values, w));
        }
        for w in SMA_WINDOWS {
            push(&mut frame, format!("SMA_{w}_{var_name}"), sma(values, w));
        }
    }
    for w in EMA_VOLUME_WINDOWS {
        push(&mut frame, format!("EMA{w}_volume"), ema(&inputs.volume, w));
    }
    for w in SMA_VOLUME_WINDOWS {
        push(
            &mut frame,
            format!("SMA_{w}_volume"),
            sma(&inputs.volume, w),
        );
    }
    push(
        &mut frame,
        "WMA10_close-price".into(),
        wma(&inputs.close, 10),
    );
    push(
        &mut frame,
        "WMA50_close-price".into(),
        wma(&inputs.close, 50),
    );

    // --- Stationary oscillators -------------------------------------------
    for period in [7, 14, 28] {
        push(
            &mut frame,
            format!("RSI{period}"),
            rsi(&inputs.close, period),
        );
    }
    for period in [1, 5, 10, 20, 60] {
        push(
            &mut frame,
            format!("ROC{period}"),
            roc(&inputs.close, period),
        );
    }
    for period in [10, 30] {
        push(
            &mut frame,
            format!("momentum{period}"),
            momentum(&inputs.close, period),
        );
    }

    let m = macd(&inputs.close, 12, 26, 9);
    push(&mut frame, "MACD".into(), m.macd);
    push(&mut frame, "MACD_signal".into(), m.signal);
    push(&mut frame, "MACD_hist".into(), m.histogram);

    let bb = bollinger(&inputs.close, 20, 2.0);
    push(&mut frame, "BB_upper".into(), bb.upper);
    push(&mut frame, "BB_lower".into(), bb.lower);
    push(&mut frame, "BB_width".into(), bb.width);
    push(&mut frame, "BB_pctB".into(), bb.percent_b);

    for period in [14, 28] {
        push(
            &mut frame,
            format!("ATR{period}"),
            atr(&inputs.high, &inputs.low, &inputs.close, period),
        );
    }

    let st = stochastic(&inputs.high, &inputs.low, &inputs.close, 14, 3);
    push(&mut frame, "STOCH_K".into(), st.k);
    push(&mut frame, "STOCH_D".into(), st.d);

    push(&mut frame, "OBV".into(), obv(&inputs.close, &inputs.volume));
    for period in [10, 20, 60] {
        push(
            &mut frame,
            format!("volume_ratio{period}"),
            volume_ratio(&inputs.volume, period),
        );
    }
    for period in [20, 60] {
        push(
            &mut frame,
            format!("CMF{period}"),
            cmf(
                &inputs.high,
                &inputs.low,
                &inputs.close,
                &inputs.volume,
                period,
            ),
        );
    }

    // Realized volatility of daily returns (stationary).
    let returns: Vec<f64> = std::iter::once(f64::NAN)
        .chain(inputs.close.windows(2).map(|w| {
            if w[0] > 0.0 {
                w[1] / w[0] - 1.0
            } else {
                f64::NAN
            }
        }))
        .collect();
    for period in [20, 60] {
        let mut vol = rolling_std(&returns[1..], period);
        vol.insert(0, f64::NAN);
        push(&mut frame, format!("volatility{period}"), vol);
    }

    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> TechnicalInputs {
        let close: Vec<f64> = (0..n)
            .map(|i| 100.0 + (i as f64 * 0.13).sin() * 10.0 + i as f64 * 0.05)
            .collect();
        TechnicalInputs {
            start: Date::from_ymd(2017, 1, 1).unwrap(),
            high: close.iter().map(|c| c + 2.0).collect(),
            low: close.iter().map(|c| c - 2.0).collect(),
            volume: (0..n).map(|i| 1000.0 + ((i * 31) % 97) as f64).collect(),
            market_cap: close.iter().map(|c| c * 1.9e7).collect(),
            close,
        }
    }

    #[test]
    fn suite_produces_expected_columns() {
        let frame = technical_suite(&inputs(300)).unwrap();
        // 2 vars × (8 EMA + 5 SMA) + 3 vol EMA + 2 vol SMA + 2 WMA = 33 MAs,
        // plus 29 oscillators.
        assert_eq!(frame.width(), 62);
        for name in [
            "EMA100_market-cap",
            "EMA200_close-price",
            "EMA5_market-cap",
            "EMA14_close-price",
            "SMA_20_close-price",
            "SMA_10_market-cap",
            "SMA_50_volume",
            "EMA200_volume",
            "EMA100_volume",
            "RSI14",
            "MACD_hist",
            "volatility20",
            "ROC60",
        ] {
            assert!(frame.has_column(name), "missing {name}");
        }
    }

    #[test]
    fn oscillator_majority_is_stationary() {
        // Roughly half the suite must be oscillators (names without the
        // moving-average prefixes) so the category can fade on long
        // windows, as the paper observes.
        let frame = technical_suite(&inputs(300)).unwrap();
        let oscillators = frame
            .column_names()
            .iter()
            .filter(|n| !n.starts_with("EMA") && !n.starts_with("SMA_") && !n.starts_with("WMA"))
            .count();
        assert!(
            oscillators * 2 >= frame.width() - 8,
            "{oscillators} oscillators of {}",
            frame.width()
        );
    }

    #[test]
    fn warmups_are_nan_then_defined() {
        let frame = technical_suite(&inputs(300)).unwrap();
        let ema200 = frame.column("EMA200_close-price").unwrap();
        assert!(ema200.values()[198].is_nan());
        assert!(!ema200.values()[199].is_nan());
        assert_eq!(ema200.first_present(), Some(199));
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let mut bad = inputs(50);
        bad.volume.pop();
        assert!(technical_suite(&bad).is_err());
        let empty = TechnicalInputs {
            start: Date::from_ymd(2017, 1, 1).unwrap(),
            close: vec![],
            high: vec![],
            low: vec![],
            volume: vec![],
            market_cap: vec![],
        };
        assert!(technical_suite(&empty).is_err());
    }

    #[test]
    fn suite_values_are_finite_after_warmup() {
        let frame = technical_suite(&inputs(400)).unwrap();
        for col in frame.columns() {
            let first = col
                .first_present()
                .unwrap_or_else(|| panic!("{} all NaN", col.name()));
            for (t, v) in col.values().iter().enumerate().skip(first) {
                assert!(v.is_finite() || v.is_nan(), "{} at {t} is {v}", col.name());
            }
            // No column should be entirely NaN on 400 days of data.
            assert!(first < 250, "{} first present at {first}", col.name());
        }
    }
}
