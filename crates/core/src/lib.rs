//! # c100-core
//!
//! The paper's primary contribution, reimplemented end to end:
//!
//! * [`index`] — the **Crypto100 index** over the top-100 assets by market
//!   cap, with the `(log₁₀ Σcap)^power` scaling factor and the power-
//!   comparison analysis behind the paper's Figure 2.
//! * [`dataset`] — assembly of the master daily panel: all six data-source
//!   categories merged onto one date index, with a name → category map.
//! * [`scenario`] — the 10 experimental scenarios (sets 2017/2019 × the
//!   prediction windows 1/7/30/90/180): start-date filtering, cleaning,
//!   interpolation, target construction and the chronological split.
//! * [`fra`] — the **Feature Reduction Algorithm** (Algorithm 1):
//!   iterative removal of features ranking in the bottom half of RF-MDI,
//!   XGB-gain, RF-PFI *and* XGB-PFI while falling under a tightening
//!   correlation threshold.
//! * [`selection`] — the final feature vector: union of FRA's and SHAP's
//!   top-75 features (Table 1).
//! * [`contribution`] — per-category contribution factors (Figures 3–4).
//! * [`groups`] — short-term/long-term feature groups, top-5 and top-20
//!   unique features (Tables 3–4).
//! * [`diversity`] — the model-performance-improvement experiments:
//!   diverse feature vector vs single-category models (Tables 5–6 and the
//!   overall RF/XGB improvements of §4.3).
//! * [`pipeline`] — one-call orchestration of a full scenario run.
//! * [`context`] — the observer-carrying [`context::RunContext`] threaded
//!   through the orchestration API; pair it with any
//!   [`c100_obs::RunObserver`] sink for structured telemetry.
//! * [`profile`] — compute profiles (grid sizes, forest sizes) so tests,
//!   examples and the full reproduction share one code path at different
//!   costs.
//! * [`report`] — plain-text table and CSV rendering for the experiment
//!   binaries.
//!
//! ```no_run
//! use c100_core::context::RunContext;
//! use c100_core::pipeline::{run_scenario_on, ScenarioSpec};
//! use c100_core::dataset::assemble;
//! use c100_core::profile::Profile;
//! use c100_core::scenario::Period;
//! use c100_obs::StderrObserver;
//! use c100_synth::SynthConfig;
//!
//! let data = c100_synth::generate(&SynthConfig::default());
//! let master = assemble(&data).unwrap();
//! let profile = Profile::fast().with_seed(7);
//! // Silent run — the legacy signature still works:
//! let result = run_scenario_on(
//!     &master,
//!     &ScenarioSpec { period: Period::Y2017, window: 30 },
//!     &profile,
//! ).unwrap();
//! println!("final feature vector: {} features", result.final_features.len());
//!
//! // Observed run — same pipeline, telemetry on stderr:
//! let observer = StderrObserver::new();
//! let ctx = RunContext::with_observer(&profile, &observer);
//! let observed = c100_core::pipeline::run_scenario_with(
//!     &master,
//!     &ScenarioSpec { period: Period::Y2019, window: 7 },
//!     &ctx,
//! ).unwrap();
//! assert!(!observed.final_features.is_empty());
//! ```

pub mod context;
pub mod contribution;
pub mod dataset;
pub mod diversity;
pub mod experiments;
pub mod export;
pub mod fra;
pub mod groups;
pub mod index;
pub mod pipeline;
pub mod portfolio;
pub mod profile;
pub mod report;
pub mod scenario;
pub mod selection;

/// Errors surfaced by the experiment pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying time-series manipulation failed.
    Ts(c100_timeseries::TsError),
    /// Underlying model fitting failed.
    Ml(c100_ml::MlError),
    /// The pipeline hit an invalid state (message explains).
    Pipeline(String),
    /// Persisting or loading a model artifact failed.
    Store(c100_store::StoreError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Ts(e) => write!(f, "time-series error: {e}"),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Pipeline(s) => write!(f, "pipeline error: {s}"),
            CoreError::Store(e) => write!(f, "artifact store error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<c100_timeseries::TsError> for CoreError {
    fn from(e: c100_timeseries::TsError) -> Self {
        CoreError::Ts(e)
    }
}

impl From<c100_ml::MlError> for CoreError {
    fn from(e: c100_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<c100_store::StoreError> for CoreError {
    fn from(e: c100_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Name of the prediction-target column in every scenario frame.
pub const TARGET: &str = "crypto100_target";

/// Name of the Crypto100 price column in the master panel.
pub const CRYPTO100: &str = "crypto100";
