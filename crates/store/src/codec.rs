//! Decoders from parsed JSON values back into `c100-ml` model structs.
//!
//! Encoding goes through `serde` derives; decoding is hand-rolled on the
//! minimal parser in `c100_obs::json` so the store stays free of heavy
//! deserialization machinery. Every shape violation maps to
//! [`StoreError::Malformed`] with a message naming the offending field —
//! decoding never panics, whatever the input.

use std::collections::BTreeMap;

use c100_ml::forest::RandomForest;
use c100_ml::gbdt::Gbdt;
use c100_ml::tree::{FittedTree, Node, Tree};
use c100_obs::json::{JsonError, Value};

use crate::{Result, StoreError};

fn malformed(e: JsonError) -> StoreError {
    StoreError::Malformed(format!("model: {e}"))
}

fn as_array<'v>(value: &'v Value, what: &str) -> Result<&'v [Value]> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(StoreError::Malformed(format!(
            "{what} is not an array: {other:?}"
        ))),
    }
}

fn array_field<'v>(value: &'v Value, key: &str) -> Result<&'v [Value]> {
    let field = value
        .get(key)
        .ok_or_else(|| StoreError::Malformed(format!("missing field {key:?}")))?;
    as_array(field, key)
}

/// A `Vec<f64>` field; `null` elements read back as NaN to mirror the
/// writer's non-finite-float encoding.
fn float_array(value: &Value, key: &str) -> Result<Vec<f64>> {
    array_field(value, key)?
        .iter()
        .map(|v| match v {
            Value::Number(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(StoreError::Malformed(format!(
                "{key:?} element is not a number: {other:?}"
            ))),
        })
        .collect()
}

fn uint32(value: &Value, key: &str) -> Result<u32> {
    let n = value.req_uint(key).map_err(malformed)?;
    u32::try_from(n)
        .map_err(|_| StoreError::Malformed(format!("field {key:?} exceeds u32 range: {n}")))
}

fn usize_field(value: &Value, key: &str) -> Result<usize> {
    let n = value.req_uint(key).map_err(malformed)?;
    usize::try_from(n)
        .map_err(|_| StoreError::Malformed(format!("field {key:?} exceeds usize range: {n}")))
}

/// A `Vec<String>` payload field.
pub(crate) fn string_array(value: &Value, key: &str) -> Result<Vec<String>> {
    array_field(value, key)?
        .iter()
        .map(|v| match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(StoreError::Malformed(format!(
                "{key:?} element is not a string: {other:?}"
            ))),
        })
        .collect()
}

/// A flat string→string object payload field.
pub(crate) fn string_map(value: &Value, key: &str) -> Result<BTreeMap<String, String>> {
    let field = value
        .get(key)
        .ok_or_else(|| StoreError::Malformed(format!("missing field {key:?}")))?;
    match field {
        Value::Object(map) => map
            .iter()
            .map(|(k, v)| match v {
                Value::String(s) => Ok((k.clone(), s.clone())),
                other => Err(StoreError::Malformed(format!(
                    "{key:?}[{k:?}] is not a string: {other:?}"
                ))),
            })
            .collect(),
        other => Err(StoreError::Malformed(format!(
            "{key:?} is not an object: {other:?}"
        ))),
    }
}

fn node_from(value: &Value) -> Result<Node> {
    Ok(Node {
        feature: uint32(value, "feature")?,
        threshold: value.req_float("threshold").map_err(malformed)?,
        left: uint32(value, "left")?,
        right: uint32(value, "right")?,
        value: value.req_float("value").map_err(malformed)?,
        cover: value.req_float("cover").map_err(malformed)?,
        impurity: value.req_float("impurity").map_err(malformed)?,
    })
}

fn tree_from(value: &Value) -> Result<Tree> {
    let nodes = array_field(value, "nodes")?
        .iter()
        .map(node_from)
        .collect::<Result<Vec<_>>>()?;
    let n_features = usize_field(value, "n_features")?;
    // Child indices must stay inside the node table (LEAF = u32::MAX is
    // the sentinel); out-of-range links would make prediction panic.
    let n_nodes = nodes.len();
    for (i, node) in nodes.iter().enumerate() {
        if !node.is_leaf() {
            let (l, r) = (node.left as usize, node.right as usize);
            if l >= n_nodes || r >= n_nodes {
                return Err(StoreError::Malformed(format!(
                    "node {i} links to child out of range ({l}/{r} of {n_nodes})"
                )));
            }
            if node.feature as usize >= n_features {
                return Err(StoreError::Malformed(format!(
                    "node {i} splits on feature {} of {n_features}",
                    node.feature
                )));
            }
        }
    }
    Ok(Tree { nodes, n_features })
}

fn fitted_tree_from(value: &Value) -> Result<FittedTree> {
    let tree_value = value
        .get("tree")
        .ok_or_else(|| StoreError::Malformed("missing field \"tree\"".into()))?;
    Ok(FittedTree {
        tree: tree_from(tree_value)?,
        feature_importances: float_array(value, "feature_importances")?,
    })
}

/// Decodes a `RandomForest` serialized by its `serde::Serialize` derive.
pub(crate) fn forest_from(value: &Value) -> Result<RandomForest> {
    let trees = array_field(value, "trees")?
        .iter()
        .map(fitted_tree_from)
        .collect::<Result<Vec<_>>>()?;
    if trees.is_empty() {
        return Err(StoreError::Malformed("forest has no trees".into()));
    }
    let n_features = usize_field(value, "n_features")?;
    for (i, t) in trees.iter().enumerate() {
        if t.tree.n_features != n_features {
            return Err(StoreError::Malformed(format!(
                "tree {i} expects {} features, forest expects {n_features}",
                t.tree.n_features
            )));
        }
    }
    Ok(RandomForest {
        trees,
        feature_importances: float_array(value, "feature_importances")?,
        n_features,
    })
}

/// Decodes a `Gbdt` serialized by its `serde::Serialize` derive.
pub(crate) fn gbdt_from(value: &Value) -> Result<Gbdt> {
    let trees = array_field(value, "trees")?
        .iter()
        .map(tree_from)
        .collect::<Result<Vec<_>>>()?;
    let n_features = usize_field(value, "n_features")?;
    for (i, t) in trees.iter().enumerate() {
        if t.n_features != n_features {
            return Err(StoreError::Malformed(format!(
                "tree {i} expects {} features, ensemble expects {n_features}",
                t.n_features
            )));
        }
    }
    Ok(Gbdt {
        base_score: value.req_float("base_score").map_err(malformed)?,
        trees,
        feature_importances: float_array(value, "feature_importances")?,
        n_features,
    })
}
