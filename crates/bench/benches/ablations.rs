//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! FRA removal rule, correlation-threshold schedule, forest parallelism,
//! GBDT column subsampling, and the cost of the three importance methods.

use criterion::{criterion_group, criterion_main, Criterion};

use c100_core::dataset::assemble;
use c100_core::fra::{run_fra, FraConfig, RemovalRule};
use c100_core::profile::Profile;
use c100_core::scenario::{build_scenario, Period, ScenarioData};
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::importance::{permutation_importance, PermutationConfig};
use c100_ml::shap::mean_abs_shap;
use c100_ml::tree::{MaxFeatures, TreeConfig};

fn scenario_fixture() -> ScenarioData {
    // One simulated year, small universe: single-core Criterion budget.
    let data = c100_synth::generate(&c100_synth::SynthConfig {
        seed: 11,
        start: c100_timeseries::Date::from_ymd(2019, 1, 1).unwrap(),
        end: c100_timeseries::Date::from_ymd(2019, 12, 31).unwrap(),
        n_assets: 110,
        warmup_days: 250,
    });
    let master = assemble(&data).unwrap();
    build_scenario(&master, Period::Y2019, 7).unwrap()
}

/// DESIGN §6: joint bottom-50% across all four rankings (paper) vs any-one
/// ranking. The aggressive rule converges in fewer iterations but risks
/// dropping features a single biased ranking dislikes.
fn ablation_fra_rule(c: &mut Criterion) {
    let scenario = scenario_fixture();
    let profile = Profile::fast();
    let mut group = c.benchmark_group("ablation_fra_rule");
    for (label, rule) in [
        ("all_four", RemovalRule::AllFour),
        ("any_one", RemovalRule::AnyOne),
    ] {
        // Few iterations: Criterion budget.
        let config = FraConfig::new()
            .with_target_len(180)
            .with_max_iterations(8)
            .with_rule(rule);
        group.bench_function(label, |b| {
            b.iter(|| {
                run_fra(
                    &scenario,
                    &profile.rf_grid[0],
                    &profile.gbdt_grid[0],
                    &config,
                    1,
                    0,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// DESIGN §6: the tightening 0.5 + 0.025/iter schedule vs a fixed
/// threshold (step 0).
fn ablation_corr_schedule(c: &mut Criterion) {
    let scenario = scenario_fixture();
    let profile = Profile::fast();
    let mut group = c.benchmark_group("ablation_corr_schedule");
    for (label, step) in [("tightening_0.025", 0.025), ("fixed_0.5", 0.0)] {
        // Fixed-threshold FRA cannot remove high-correlation features at
        // all, so bound the workload: this is a per-iteration cost
        // comparison, not a convergence race.
        let config = FraConfig::new()
            .with_target_len(180)
            .with_max_iterations(8)
            .with_corr_step(step);
        group.bench_function(label, |b| {
            b.iter(|| {
                run_fra(
                    &scenario,
                    &profile.rf_grid[0],
                    &profile.gbdt_grid[0],
                    &config,
                    1,
                    0,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// DESIGN §6: rayon per-tree forest fitting vs an equivalent serial loop
/// of single-tree fits.
fn ablation_parallel(c: &mut Criterion) {
    let scenario = scenario_fixture();
    let names: Vec<&str> = scenario.feature_names.iter().map(|s| s.as_str()).collect();
    let train = scenario.train_matrix(&names).unwrap();
    let x = Matrix::from_row_major(train.x.clone(), train.n_features).unwrap();
    let y = train.y.clone();

    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    group.bench_function("forest_rayon_24trees", |b| {
        let cfg = RandomForestConfig {
            n_estimators: 24,
            max_depth: Some(8),
            max_features: MaxFeatures::Sqrt,
            ..Default::default()
        };
        b.iter(|| cfg.fit(&x, &y, 0).unwrap());
    });
    group.bench_function("trees_serial_24", |b| {
        let cfg = TreeConfig {
            max_depth: Some(8),
            max_features: MaxFeatures::Sqrt,
            ..Default::default()
        };
        b.iter(|| {
            // Serial baseline: same work without the rayon fan-out.
            (0..24)
                .map(|i| cfg.fit(&x, &y, i).unwrap())
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

/// DESIGN §6: GBDT column subsampling fractions.
fn ablation_gbdt_colsample(c: &mut Criterion) {
    let scenario = scenario_fixture();
    let names: Vec<&str> = scenario.feature_names.iter().map(|s| s.as_str()).collect();
    let train = scenario.train_matrix(&names).unwrap();
    let x = Matrix::from_row_major(train.x.clone(), train.n_features).unwrap();
    let y = train.y.clone();

    let mut group = c.benchmark_group("ablation_gbdt_colsample");
    group.sample_size(10);
    for colsample in [0.3, 1.0] {
        group.bench_function(format!("colsample_{colsample}"), |b| {
            let cfg = GbdtConfig {
                n_estimators: 20,
                max_depth: 4,
                colsample_bytree: colsample,
                ..Default::default()
            };
            b.iter(|| cfg.fit(&x, &y, 0).unwrap());
        });
    }
    group.finish();
}

/// DESIGN §6: relative cost of the three importance methods on the same
/// fitted forest (MDI is free at fit time; PFI and SHAP are post-hoc).
fn ablation_importance(c: &mut Criterion) {
    let scenario = scenario_fixture();
    let names: Vec<&str> = scenario.feature_names.iter().map(|s| s.as_str()).collect();
    let train = scenario.train_matrix(&names).unwrap();
    let x = Matrix::from_row_major(train.x.clone(), train.n_features).unwrap();
    let y = train.y.clone();
    let cfg = RandomForestConfig {
        n_estimators: 16,
        max_depth: Some(8),
        max_features: MaxFeatures::Sqrt,
        ..Default::default()
    };
    let model = cfg.fit(&x, &y, 0).unwrap();

    let mut group = c.benchmark_group("ablation_importance");
    group.sample_size(10);
    group.bench_function("mdi_at_fit_time", |b| {
        b.iter(|| cfg.fit(&x, &y, 0).unwrap())
    });
    group.bench_function("pfi_2repeats", |b| {
        let pfi_cfg = PermutationConfig {
            n_repeats: 2,
            seed: 0,
        };
        b.iter(|| permutation_importance(&model, &x, &y, &pfi_cfg).unwrap());
    });
    group.bench_function("treeshap_64rows", |b| {
        let rows: Vec<usize> = (0..x.n_rows()).step_by((x.n_rows() / 64).max(1)).collect();
        let sample = x.take_rows(&rows);
        b.iter(|| mean_abs_shap(&model, &sample));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ablation_fra_rule, ablation_corr_schedule, ablation_parallel,
              ablation_gbdt_colsample, ablation_importance
}
criterion_main!(benches);
