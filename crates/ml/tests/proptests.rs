//! Property-based tests for the ML substrate. The SHAP local-accuracy
//! property is the strongest check in the crate: it holds exactly only for
//! a correct TreeSHAP implementation.

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::metrics::{mae, mse, r2, rmse};
use c100_ml::model_selection::kfold_indices;
use c100_ml::shap::ShapExplainable;
use c100_ml::tree::{MaxFeatures, TreeConfig};
use c100_ml::Regressor;
use proptest::prelude::*;

/// Strategy: a small random regression dataset.
fn dataset(max_rows: usize, n_features: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec(
        (
            prop::collection::vec(-100.0f64..100.0, n_features),
            -1000.0f64..1000.0,
        ),
        4..max_rows,
    )
    .prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows.iter().map(|(f, _)| f.clone()).collect();
        let y: Vec<f64> = rows.iter().map(|(_, t)| *t).collect();
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_predictions_stay_within_target_range((rows, y) in dataset(40, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &rows {
            let p = fit.predict_row(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_predictions_stay_within_target_range((rows, y) in dataset(30, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let model = RandomForestConfig { n_estimators: 8, ..Default::default() }
            .fit(&x, &y, 1).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &rows {
            let p = model.predict_row(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn tree_mdi_is_a_distribution((rows, y) in dataset(40, 4)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 2).unwrap();
        let sum: f64 = fit.feature_importances.iter().sum();
        prop_assert!(fit.feature_importances.iter().all(|v| *v >= 0.0));
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn shap_local_accuracy_single_tree((rows, y) in dataset(30, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig { max_depth: Some(4), ..Default::default() }
            .fit(&x, &y, 3).unwrap();
        for row in rows.iter().take(8) {
            let explanation = fit.shap_row(row);
            let reconstructed = explanation.reconstructed();
            let predicted = fit.predict_row(row);
            prop_assert!(
                (reconstructed - predicted).abs() < 1e-6 * (1.0 + predicted.abs()),
                "Σφ + base = {reconstructed} but f(x) = {predicted}"
            );
        }
    }

    #[test]
    fn shap_local_accuracy_gbdt((rows, y) in dataset(25, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let model = GbdtConfig { n_estimators: 6, max_depth: 3, ..Default::default() }
            .fit(&x, &y, 4).unwrap();
        for row in rows.iter().take(5) {
            let explanation = model.shap_row(row);
            let predicted = model.predict_row(row);
            prop_assert!(
                (explanation.reconstructed() - predicted).abs() < 1e-6 * (1.0 + predicted.abs())
            );
        }
    }

    #[test]
    fn gbdt_training_error_decreases_with_rounds((rows, y) in dataset(40, 2)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let short = GbdtConfig { n_estimators: 1, ..Default::default() }.fit(&x, &y, 5).unwrap();
        let long = GbdtConfig { n_estimators: 20, ..Default::default() }.fit(&x, &y, 5).unwrap();
        let e_short = mse(&y, &short.predict(&x));
        let e_long = mse(&y, &long.predict(&x));
        prop_assert!(e_long <= e_short + 1e-9, "{e_long} > {e_short}");
    }

    #[test]
    fn metrics_identities(y in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        // Perfect predictions: all error metrics zero, R² = 1 (if varied).
        prop_assert_eq!(mse(&y, &y), 0.0);
        prop_assert_eq!(mae(&y, &y), 0.0);
        prop_assert_eq!(rmse(&y, &y), 0.0);
        let spread = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1e-9 {
            prop_assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_dominates_squared_mae(
        y in prop::collection::vec(-100.0f64..100.0, 2..30),
        p in prop::collection::vec(-100.0f64..100.0, 2..30),
    ) {
        let n = y.len().min(p.len());
        let (y, p) = (&y[..n], &p[..n]);
        // Jensen: mean of squares ≥ square of mean of |errors|.
        prop_assert!(mse(y, p) + 1e-9 >= mae(y, p).powi(2));
    }

    #[test]
    fn kfold_partitions_exactly(n in 4usize..200, k in 2usize..6) {
        prop_assume!(n >= k);
        let folds = kfold_indices(n, k).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in test {
                prop_assert!(!seen[i], "row {i} in two test folds");
                seen[i] = true;
                prop_assert!(!train.contains(&i));
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn max_features_resolve_in_range(n in 1usize..500, c in 0usize..600, f in 0.01f64..1.0) {
        for mf in [
            MaxFeatures::All,
            MaxFeatures::Sqrt,
            MaxFeatures::Log2,
            MaxFeatures::Count(c),
            MaxFeatures::Fraction(f),
        ] {
            let k = mf.resolve(n);
            prop_assert!(k >= 1 && k <= n, "{mf:?} on {n} gave {k}");
        }
    }

    #[test]
    fn constant_features_get_zero_importance((rows, y) in dataset(30, 2)) {
        // Append a constant column: it can never split usefully.
        let augmented: Vec<Vec<f64>> = rows.iter().map(|r| {
            let mut r = r.clone();
            r.push(7.5);
            r
        }).collect();
        let x = Matrix::from_rows(&augmented).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 9).unwrap();
        prop_assert_eq!(fit.feature_importances[2], 0.0);
    }
}
