//! Scenario-matrix prep throughput: shared dataset prep (one assembled
//! master dataset and one `PrepCache` across the whole run, as
//! `repro matrix` executes) vs naive per-scenario prep (every cell
//! assembles the dataset, builds its family index and preps its own
//! window slice — what looping the pre-matrix `run_scenario` path over
//! the cross-product would do). Cells differing only in horizon or in
//! walk-forward split share a prep, so the shared path does a fraction
//! of the prep work.
//!
//! The headline `speedup` is the prep layer's; the end-to-end cell
//! medians (prep + GBDT fit + scoring) are recorded alongside so the
//! share of total matrix time going to prep stays visible. Everything
//! lands in `results/BENCH_matrix.json` so later PRs can regress-gate
//! the sharing without re-running Criterion.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use c100_bench::{bench_env_json, write_bench_record};
use c100_core::dataset::{assemble, MasterDataset};
use c100_matrix::prep::PrepCache;
use c100_matrix::runner::{evaluate_cells_shared, evaluate_cells_unshared};
use c100_matrix::sched::run_tasks;
use c100_matrix::spec::{expand_cells, expand_windows};
use c100_matrix::{CellPlan, MatrixConfig};
use c100_synth::{generate, MarketData, SynthConfig};

/// The acceptance bar is "shared prep wins at >= 4 threads"; more
/// workers only help the shared path (the naive one repeats the same
/// prep on every worker), so 4 is the conservative measurement point.
const THREADS: usize = 4;

/// Median of three manual timings, independent of Criterion's own
/// sampling (the recorded JSON must not depend on sampler settings).
fn median_secs(mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[1]
}

/// Prep every cell's window through one shared cache, as the matrix
/// runner does. Returns total prep rows as a liveness check.
fn prep_shared(
    master: &MasterDataset,
    families: &[(String, Vec<f64>)],
    cells: &[CellPlan],
    threads: usize,
) -> usize {
    let cache = PrepCache::new(master, families);
    let (rows, _) = run_tasks(cells.iter().collect(), threads, |plan| {
        cache
            .get(
                plan.family_idx,
                plan.window.prep_start,
                plan.window.prep_end,
            )
            .expect("prep builds on synth data")
            .len()
    });
    rows.iter().sum()
}

/// Prep every cell from scratch: assemble the master dataset, build the
/// cell's family index, slice/clean/bin its window — per cell.
fn prep_unshared(
    config: &MatrixConfig,
    data: &MarketData,
    cells: &[CellPlan],
    threads: usize,
) -> usize {
    let (rows, _) = run_tasks(cells.iter().collect(), threads, |plan| {
        let master = assemble(data).expect("same data the shared path assembled");
        let family = &config.families[plan.family_idx];
        let families = vec![(family.id(), family.build(&data.universe).into_values())];
        let cache = PrepCache::new(&master, &families);
        cache
            .get(0, plan.window.prep_start, plan.window.prep_end)
            .expect("prep builds on synth data")
            .len()
    });
    rows.iter().sum()
}

fn bench_matrix_throughput(c: &mut Criterion) {
    let seed = 11;
    let mut config = MatrixConfig::new(seed, SynthConfig::small(seed));
    // Two families keep the naive path's triple-repeat affordable while
    // every kind of prep sharing (horizons, walk-forward folds, the
    // full span) still occurs.
    config.families.truncate(2);

    let data = generate(&config.synth);
    let master = assemble(&data).expect("assemble synth dataset");
    let families: Vec<(String, Vec<f64>)> = config
        .families
        .iter()
        .map(|f| (f.id(), f.build(&data.universe).into_values()))
        .collect();
    let windows = expand_windows(&config, &data.latents).expect("expand windows");
    let cells = expand_cells(&config, &windows);
    let n_cells = cells.len();

    // Pin down that sharing is invisible in the results before timing:
    // both paths must produce byte-identical cell records.
    let (shared_cells, prep_builds, prep_hits) =
        evaluate_cells_shared(&config, &master, &families, &cells, THREADS);
    let unshared_cells = evaluate_cells_unshared(&config, &data, &cells, THREADS);
    assert_eq!(shared_cells.len(), unshared_cells.len());
    for (a, b) in shared_cells.iter().zip(&unshared_cells) {
        assert_eq!(
            a.encode(),
            b.encode(),
            "prep sharing must not change results"
        );
    }
    assert_eq!(
        prep_shared(&master, &families, &cells, THREADS),
        prep_unshared(&config, &data, &cells, THREADS),
        "both prep paths must produce the same rows"
    );

    // The prep layer: the work the cache deduplicates.
    let shared_prep_secs = median_secs(|| {
        prep_shared(&master, &families, &cells, THREADS);
    });
    let unshared_prep_secs = median_secs(|| {
        prep_unshared(&config, &data, &cells, THREADS);
    });
    let speedup = unshared_prep_secs / shared_prep_secs.max(1e-12);

    // End to end (prep + fit + scoring), for the share of total matrix
    // time prep represents.
    let shared_e2e_secs = median_secs(|| {
        evaluate_cells_shared(&config, &master, &families, &cells, THREADS);
    });
    let unshared_e2e_secs = median_secs(|| {
        evaluate_cells_unshared(&config, &data, &cells, THREADS);
    });

    let recorded = format!(
        "{{\"bench\":\"matrix_throughput\",\"env\":{},\"results\":[{{\
         \"cells\":{n_cells},\"threads\":{THREADS},\
         \"prep_builds_shared\":{prep_builds},\"prep_hits_shared\":{prep_hits},\
         \"prep_builds_unshared\":{n_cells},\
         \"shared_prep_median_secs\":{shared_prep_secs:.4},\
         \"unshared_prep_median_secs\":{unshared_prep_secs:.4},\
         \"speedup\":{speedup:.2},\
         \"shared_e2e_median_secs\":{shared_e2e_secs:.4},\
         \"unshared_e2e_median_secs\":{unshared_e2e_secs:.4},\
         \"e2e_speedup\":{:.2},\
         \"shared_cells_per_sec\":{:.1}}}]}}\n",
        bench_env_json(),
        unshared_e2e_secs / shared_e2e_secs.max(1e-12),
        n_cells as f64 / shared_e2e_secs.max(1e-12)
    );

    let mut group = c.benchmark_group("matrix_throughput");
    group.bench_function(
        format!("shared_prep_{n_cells}_cells_{THREADS}_threads"),
        |b| b.iter(|| prep_shared(&master, &families, &cells, THREADS)),
    );
    group.bench_function(
        format!("e2e_shared_{n_cells}_cells_{THREADS}_threads"),
        |b| b.iter(|| evaluate_cells_shared(&config, &master, &families, &cells, THREADS)),
    );
    group.finish();

    let path = write_bench_record("BENCH_matrix.json", &recorded);
    eprintln!(
        "recorded matrix throughput ({n_cells} cells, {speedup:.2}x shared-prep speedup) -> {}",
        path.display()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matrix_throughput
}
criterion_main!(benches);
