//! Shared synthetic datasets for the Criterion benches.
//!
//! The `ml_models`, `serve`, and `predict` benches all measure models
//! fitted on the same family of synthetic regression problems; keeping
//! the builder here means the benches cannot drift onto different data
//! and their recorded JSON stays comparable across suites.

use std::collections::BTreeMap;

use c100_ml::data::Matrix;
use c100_store::{ModelArtifact, ModelPayload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic regression problem: uniform features in `[0, 1)` and
/// a smooth nonlinear target with a little noise. The `(2000, 283)`
/// shape matches a pipeline scenario's design matrix.
pub fn synthetic_regression(n_rows: usize, n_features: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n_rows);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let f: Vec<f64> = (0..n_features).map(|_| rng.gen::<f64>()).collect();
        let target = 5.0 * f[0]
            + 3.0 * (f[1] * std::f64::consts::PI).sin()
            + f[2] * f[3 % n_features]
            + 0.1 * rng.gen::<f64>();
        rows.push(f);
        y.push(target);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

/// Wraps a payload fitted on a [`synthetic_regression`] dataset in a
/// ready-to-serve artifact whose feature schema matches its width.
pub fn wrap_artifact(model: ModelPayload, train_rows: u64, seed: u64) -> ModelArtifact {
    let width = model.n_features();
    ModelArtifact {
        scenario: "2019_7".into(),
        period: "2019".into(),
        window: 7,
        features: (0..width).map(|i| format!("feat_{i}")).collect(),
        profile: "bench".into(),
        seed,
        train_rows,
        train_start: "2019-01-01".into(),
        train_end: "2019-07-19".into(),
        hyperparameters: BTreeMap::new(),
        model,
    }
}
