//! `c100-load` against a live `c100-serve` server: a deterministic
//! closed-loop replay over keep-alive connections completes with zero
//! failed requests, mixes `/healthz` and `/predict` traffic, and the
//! server's connection accounting confirms connections were actually
//! reused rather than reopened per request.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use c100_load::{run, LoadConfig, LoadPlan, Mode, RequestTemplate, Slo};
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_obs::MetricsRegistry;
use c100_serve::{ServeConfig, Server};
use c100_store::{ArtifactStore, ModelArtifact, ModelPayload};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_load_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small fitted RF artifact so `/predict` exercises a real model.
fn quick_artifact(seed: u64) -> ModelArtifact {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|_| (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r[0] - 2.0 * r[2]).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let model = RandomForestConfig {
        n_estimators: 8,
        max_depth: Some(5),
        ..Default::default()
    }
    .fit(&x, &y, seed)
    .unwrap();
    ModelArtifact {
        scenario: "2019_7".into(),
        period: "2019".into(),
        window: 7,
        features: (0..4).map(|i| format!("feat_{i}")).collect(),
        profile: "fast".into(),
        seed,
        train_rows: x.n_rows() as u64,
        train_start: "2019-01-01".into(),
        train_end: "2019-03-21".into(),
        hyperparameters: BTreeMap::new(),
        model: ModelPayload::Rf(model),
    }
}

#[test]
fn closed_loop_replay_against_a_live_server_has_zero_failures() {
    let dir = temp_dir("replay");
    {
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.save(&quick_artifact(11)).unwrap();
    }
    let registry = Arc::new(MetricsRegistry::new());
    let mut config = ServeConfig::new(&dir, "127.0.0.1:0");
    config.workers = 2;
    config.queue_depth = 64;
    config.max_batch = 4;
    let handle = Server::start(config, registry.clone(), None).unwrap();
    let addr = handle.local_addr();

    // The smoke mix: health checks interleaved with single-row and
    // full-batch predicts (the latter exercise the batcher bypass).
    let templates = vec![
        RequestTemplate::get("/healthz"),
        RequestTemplate::post(
            "/predict",
            "{\"scenario\":\"2019_7\",\"rows\":[[0.1,0.2,0.3,0.4]]}",
        ),
        RequestTemplate::post(
            "/predict",
            "{\"scenario\":\"2019_7\",\"rows\":[[0.1,0.2,0.3,0.4],[1.0,-1.0,0.5,0.0],\
             [0.0,0.0,0.0,0.0],[-0.5,0.25,2.0,-1.5]]}",
        ),
    ];
    let plan = LoadPlan::replay(&templates, 240, 42);
    let load_registry = Arc::new(MetricsRegistry::new());
    let load_config = LoadConfig {
        addr,
        mode: Mode::Closed { connections: 8 },
        seed: 42,
        timeout: Duration::from_secs(10),
    };
    let report = run(&plan, &load_config, &load_registry);

    // Zero failed requests is the smoke acceptance bar; with 8-deep
    // concurrency against a 64-deep queue nothing sheds either.
    assert_eq!(report.requests, 240);
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.shed, 0, "{report:?}");
    assert_eq!(report.ok, 240);
    assert_eq!(report.statuses.get(&200).copied(), Some(240));
    let slo = Slo {
        p99_micros: Some(60_000_000.0),
        max_error_rate: Some(0.0),
    };
    assert!(slo.passed(&report), "{:?}", slo.violations(&report));

    // Keep-alive did its job: at most one connection per worker, not
    // one per request.
    let snap = registry.snapshot();
    let conns = snap.counters["serve.connections_total"];
    assert!(
        (1..=8).contains(&conns),
        "expected <= 8 reused connections, server accepted {conns}"
    );
    assert_eq!(snap.counters["http.requests_total"], 240);

    // The load side published the same shapes `repro compare` diffs.
    let load_snap = load_registry.snapshot();
    assert_eq!(load_snap.histograms["load.request_micros"].count, 240);
    let json = load_snap.to_json();
    let reparsed = c100_obs::MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(reparsed.histograms["load.request_micros"].count, 240);

    // Graceful teardown still drains.
    let shutdown = std::net::TcpStream::connect(addr).and_then(|mut s| {
        use std::io::Write;
        s.write_all(b"POST /shutdown HTTP/1.1\r\nConnection: close\r\n\r\n")
    });
    assert!(shutdown.is_ok());
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}
