//! Self-time profiles aggregated from span trees.
//!
//! A [`ProfileReport`] collapses the raw span timeline
//! ([`crate::trace::Tracer::snapshot`]) into one row per
//! `(scenario, span name)` pair: how many times the span ran, its total
//! wall-clock time, and its **self time** — total time minus the time
//! spent inside direct children. Self time is what `repro compare`
//! gates on: it attributes each microsecond to exactly one span name,
//! so a regression shows up where it happened rather than in every
//! ancestor.
//!
//! With rayon, children run concurrently, so the sum of child durations
//! can exceed the parent's wall time; per-span self time saturates at
//! zero in that case instead of going negative.

use std::collections::{BTreeMap, HashMap};

use crate::json::{self, JsonError, Value, Writer};
use crate::trace::{SpanId, SpanRecord};

/// One aggregated profile row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Scenario the spans belonged to (inherited down the parent chain;
    /// empty string for spans outside any scenario).
    pub scenario: String,
    /// Span name.
    pub name: String,
    /// Number of completed spans aggregated into this row.
    pub calls: u64,
    /// Sum of span wall-clock durations, in microseconds.
    pub total_micros: u64,
    /// Sum of per-span self times (duration minus direct children,
    /// clamped at zero), in microseconds.
    pub self_micros: u64,
}

/// Per-scenario self-time/total-time/call-count profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Rows sorted by scenario, then by descending self time.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Aggregates completed spans into a report. Scenario tags only
    /// exist on root spans, so each span inherits the tag of its
    /// nearest tagged ancestor.
    pub fn from_spans(spans: &[SpanRecord]) -> ProfileReport {
        let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
        let mut child_micros: HashMap<SpanId, u64> = HashMap::new();
        for s in spans {
            if let Some(parent) = s.parent {
                *child_micros.entry(parent).or_insert(0) += s.dur_micros;
            }
        }
        let scenario_of = |span: &SpanRecord| -> String {
            let mut cursor = Some(span);
            while let Some(s) = cursor {
                if let Some(scenario) = &s.scenario {
                    return scenario.clone();
                }
                cursor = s.parent.and_then(|p| by_id.get(&p).copied());
            }
            String::new()
        };
        let mut rows: BTreeMap<(String, String), ProfileRow> = BTreeMap::new();
        for s in spans {
            let key = (scenario_of(s), s.name.to_string());
            let row = rows.entry(key.clone()).or_insert_with(|| ProfileRow {
                scenario: key.0,
                name: key.1,
                calls: 0,
                total_micros: 0,
                self_micros: 0,
            });
            row.calls += 1;
            row.total_micros += s.dur_micros;
            let children = child_micros.get(&s.id).copied().unwrap_or(0);
            row.self_micros += s.dur_micros.saturating_sub(children);
        }
        let mut rows: Vec<ProfileRow> = rows.into_values().collect();
        rows.sort_by(|a, b| {
            a.scenario
                .cmp(&b.scenario)
                .then(b.self_micros.cmp(&a.self_micros))
                .then(a.name.cmp(&b.name))
        });
        ProfileReport { rows }
    }

    /// Looks up a row by scenario and name.
    pub fn row(&self, scenario: &str, name: &str) -> Option<&ProfileRow> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.name == name)
    }

    /// Renders the report as JSON: `{"profile": [{...}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"profile\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut w = Writer::new();
            w.begin();
            w.str_field("scenario", &row.scenario);
            w.str_field("name", &row.name);
            w.uint_field("calls", row.calls);
            w.uint_field("total_micros", row.total_micros);
            w.uint_field("self_micros", row.self_micros);
            w.end();
            out.push_str(&w.finish());
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a report previously written by [`ProfileReport::to_json`]
    /// (unknown fields in each row are ignored for forward compat).
    pub fn from_json(text: &str) -> Result<ProfileReport, JsonError> {
        let value = json::parse(text)?;
        let items = match value.get("profile") {
            Some(Value::Array(items)) => items,
            _ => return Err(JsonError::new("missing \"profile\" array")),
        };
        let mut rows = Vec::with_capacity(items.len());
        for item in items {
            rows.push(ProfileRow {
                scenario: item.req_str("scenario")?.to_string(),
                name: item.req_str("name")?.to_string(),
                calls: item.req_uint("calls")?,
                total_micros: item.req_uint("total_micros")?,
                self_micros: item.req_uint("self_micros")?,
            });
        }
        Ok(ProfileReport { rows })
    }

    /// Renders the report as an aligned human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<18} {:>8} {:>14} {:>14}\n",
            "scenario", "span", "calls", "total", "self"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:<18} {:>8} {:>14} {:>14}\n",
                if row.scenario.is_empty() {
                    "-"
                } else {
                    &row.scenario
                },
                row.name,
                row.calls,
                fmt_micros(row.total_micros),
                fmt_micros(row.self_micros),
            ));
        }
        out
    }
}

/// Human-readable duration (same scale choices as the stderr sink).
fn fmt_micros(micros: u64) -> String {
    if micros >= 10_000_000 {
        format!("{:.1}s", micros as f64 / 1e6)
    } else if micros >= 10_000 {
        format!("{:.1}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        scenario: Option<&str>,
        start: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name,
            scenario: scenario.map(|s| s.to_string()),
            tid: 1,
            start_micros: start,
            dur_micros: dur,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let spans = vec![
            span(1, None, "scenario", Some("2019_7"), 0, 100),
            span(2, Some(1), "fra", None, 10, 60),
            span(3, Some(2), "rf_fit", None, 20, 40),
        ];
        let report = ProfileReport::from_spans(&spans);
        // scenario: 100 total, 100 - 60 = 40 self (grandchild not counted).
        let root = report.row("2019_7", "scenario").unwrap();
        assert_eq!(root.total_micros, 100);
        assert_eq!(root.self_micros, 40);
        let fra = report.row("2019_7", "fra").unwrap();
        assert_eq!(fra.self_micros, 20);
        let fit = report.row("2019_7", "rf_fit").unwrap();
        assert_eq!(fit.self_micros, 40);
        assert_eq!(fit.scenario, "2019_7", "scenario inherited via parents");
    }

    #[test]
    fn parallel_children_clamp_self_time_at_zero() {
        // Two children each as long as the parent (ran concurrently).
        let spans = vec![
            span(1, None, "fit", Some("s"), 0, 50),
            span(2, Some(1), "tree", None, 0, 50),
            span(3, Some(1), "tree", None, 0, 50),
        ];
        let report = ProfileReport::from_spans(&spans);
        assert_eq!(report.row("s", "fit").unwrap().self_micros, 0);
        let tree = report.row("s", "tree").unwrap();
        assert_eq!(tree.calls, 2);
        assert_eq!(tree.total_micros, 100);
    }

    #[test]
    fn rows_sort_by_scenario_then_self_time() {
        let spans = vec![
            span(1, None, "small", Some("a"), 0, 5),
            span(2, None, "big", Some("a"), 0, 500),
            span(3, None, "other", Some("b"), 0, 50),
        ];
        let report = ProfileReport::from_spans(&spans);
        let order: Vec<(&str, &str)> = report
            .rows
            .iter()
            .map(|r| (r.scenario.as_str(), r.name.as_str()))
            .collect();
        assert_eq!(order, vec![("a", "big"), ("a", "small"), ("b", "other")]);
    }

    #[test]
    fn json_round_trips() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("2019_7", "scenario");
            let _child = root.ctx().span("tune");
        }
        let report = tracer.profile();
        let parsed = ProfileReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_ignores_unknown_row_fields() {
        let text = "{\"profile\":[{\"scenario\":\"s\",\"name\":\"n\",\"calls\":1,\
                     \"total_micros\":2,\"self_micros\":2,\"future_field\":true}]}";
        let report = ProfileReport::from_json(text).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].total_micros, 2);
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let spans = vec![span(1, None, "scenario", Some("2019_7"), 0, 12_345_678)];
        let text = ProfileReport::from_spans(&spans).render();
        assert!(text.contains("2019_7"));
        assert!(text.contains("12.3s"));
        let widths: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned columns");
    }
}
