//! The streaming feature row: one bundle of incremental indicator
//! state per asset, folded tick-by-tick.
//!
//! Each call to [`StreamIndicators::update`] costs O(1) — the states in
//! [`c100_indicators::incremental`] replay the batch recurrences
//! without touching history — where recomputing the batch columns at
//! tick `t` would cost O(t). The two SMAs carry a periodic
//! exact-recompute resync, so after warm-up their outputs are within
//! [`c100_indicators::SMA_RESYNC_TOLERANCE`] (relative) of the batch
//! columns; EMA/RSI/ATR are bit-identical (see the parity proptests in
//! `crates/indicators/tests/proptests.rs`).

use c100_indicators::{AtrState, EmaState, RsiState, SmaState};

/// Ordered schema of the streaming feature row. This is also the
/// artifact feature schema every online model is trained and served
/// with, so CSV exports, `/predict` bodies, and `repro predict` all
/// agree on column order.
pub const FEATURE_NAMES: [&str; 6] = ["sma_7", "sma_30", "ema_14", "rsi_14", "atr_14", "vol_sma_7"];

/// Incremental indicator state for one price/volume stream.
pub struct StreamIndicators {
    sma_7: SmaState,
    sma_30: SmaState,
    ema_14: EmaState,
    rsi_14: RsiState,
    atr_14: AtrState,
    vol_sma_7: SmaState,
}

impl StreamIndicators {
    /// Fresh state; the SMAs recompute their running sums exactly every
    /// `resync_every` ticks to bound float drift.
    pub fn new(resync_every: usize) -> StreamIndicators {
        StreamIndicators {
            sma_7: SmaState::new(7).with_resync(resync_every),
            sma_30: SmaState::new(30).with_resync(resync_every),
            ema_14: EmaState::new(14),
            rsi_14: RsiState::new(14),
            atr_14: AtrState::new(14),
            vol_sma_7: SmaState::new(7).with_resync(resync_every),
        }
    }

    /// Folds one tick into every state and returns the feature row in
    /// [`FEATURE_NAMES`] order. Entries are `NaN` until the respective
    /// indicator's warm-up completes (the `sma_30` warm-up of 30 ticks
    /// is the longest).
    pub fn update(&mut self, high: f64, low: f64, close: f64, volume: f64) -> [f64; 6] {
        [
            self.sma_7.update(close),
            self.sma_30.update(close),
            self.ema_14.update(close),
            self.rsi_14.update(close),
            self.atr_14.update(high, low, close),
            self.vol_sma_7.update(volume),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_indicators::momentum::rsi;
    use c100_indicators::moving::{ema, sma};
    use c100_indicators::volatility::atr;
    use c100_indicators::SMA_RESYNC_TOLERANCE;

    #[test]
    fn feature_row_matches_batch_columns() {
        let n = 120;
        let close: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.29).sin() * 40.0 + 900.0)
            .collect();
        let high: Vec<f64> = close.iter().map(|c| c * 1.01).collect();
        let low: Vec<f64> = close.iter().map(|c| c * 0.98).collect();
        let volume: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.11).cos() * 5.0 + 100.0)
            .collect();

        let b_sma7 = sma(&close, 7);
        let b_sma30 = sma(&close, 30);
        let b_ema14 = ema(&close, 14);
        let b_rsi14 = rsi(&close, 14);
        let b_atr14 = atr(&high, &low, &close, 14);
        let b_vol7 = sma(&volume, 7);

        let mut state = StreamIndicators::new(16);
        for t in 0..n {
            let row = state.update(high[t], low[t], close[t], volume[t]);
            let close_to = |inc: f64, batch: f64| {
                if batch.is_nan() {
                    inc.is_nan()
                } else {
                    (inc - batch).abs() / batch.abs().max(1.0) <= SMA_RESYNC_TOLERANCE
                }
            };
            assert!(close_to(row[0], b_sma7[t]), "sma_7 t={t}");
            assert!(close_to(row[1], b_sma30[t]), "sma_30 t={t}");
            assert_eq!(row[2].to_bits(), b_ema14[t].to_bits(), "ema_14 t={t}");
            assert_eq!(row[3].to_bits(), b_rsi14[t].to_bits(), "rsi_14 t={t}");
            assert_eq!(row[4].to_bits(), b_atr14[t].to_bits(), "atr_14 t={t}");
            assert!(close_to(row[5], b_vol7[t]), "vol_sma_7 t={t}");
        }
    }

    #[test]
    fn row_completes_exactly_at_the_longest_warmup() {
        let mut state = StreamIndicators::new(64);
        let mut first_complete = None;
        for t in 0..60 {
            let x = 100.0 + (t as f64) * 0.5;
            let row = state.update(x * 1.01, x * 0.99, x, 50.0);
            if first_complete.is_none() && row.iter().all(|v| v.is_finite()) {
                first_complete = Some(t);
            }
        }
        // sma_30 emits its first value on the 30th tick (index 29).
        assert_eq!(first_complete, Some(29));
    }
}
