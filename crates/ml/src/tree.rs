//! CART regression trees with exact greedy split search.
//!
//! The tree is stored as a flat node arena ([`Tree`]); the same structure
//! is produced by the variance-criterion builder here and by the
//! gradient-statistics builder in [`crate::gbdt`], so prediction and
//! TreeSHAP are shared between model families.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::data::{check_fit_input, Matrix};
use crate::{MlError, Regressor, Result};

/// Candidate-cells threshold (`features × samples`) above which split
/// search fans out across features with rayon. Below it the serial scan
/// wins on overhead.
const PARALLEL_SPLIT_CELLS: usize = 32_768;

/// Sentinel child index marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// One node of a regression tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Node {
    /// Feature index tested at this node (unused for leaves).
    pub feature: u32,
    /// Split threshold: rows with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Left child index, or [`LEAF`].
    pub left: u32,
    /// Right child index, or [`LEAF`].
    pub right: u32,
    /// Predicted value (mean target for CART, boosted weight for GBDT).
    pub value: f64,
    /// Cover: number of training samples (CART) or hessian mass (GBDT)
    /// that reached this node. TreeSHAP needs it for path probabilities.
    pub cover: f64,
    /// Node impurity at fit time (variance for CART).
    pub impurity: f64,
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left == LEAF
    }
}

/// A fitted regression tree: flat arena with node 0 as the root.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Tree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Width of rows this tree was trained on.
    pub n_features: usize,
}

impl Tree {
    /// Depth of the tree (a lone root counts as depth 0).
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], idx: u32) -> usize {
            let node = &nodes[idx as usize];
            if node.is_leaf() {
                0
            } else {
                1 + depth_at(nodes, node.left).max(depth_at(nodes, node.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_at(&self.nodes, 0)
        }
    }

    /// Number of leaf nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Total number of nodes in the arena.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Traverses the tree for one row and returns the leaf value.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.is_leaf() {
                return node.value;
            }
            idx = if row[node.feature as usize] <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }

    /// Cover-weighted mean of leaf values: the tree's expected prediction,
    /// which TreeSHAP reports as the base value.
    pub fn expected_value(&self) -> f64 {
        fn walk(nodes: &[Node], idx: u32) -> f64 {
            let node = &nodes[idx as usize];
            if node.is_leaf() {
                return node.value;
            }
            let l = &nodes[node.left as usize];
            let r = &nodes[node.right as usize];
            let total = l.cover + r.cover;
            if total <= 0.0 {
                return node.value;
            }
            (l.cover * walk(nodes, node.left) + r.cover * walk(nodes, node.right)) / total
        }
        walk(&self.nodes, 0)
    }
}

/// How many features to examine at each split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART; sklearn RF regressor default).
    All,
    /// `round(sqrt(n_features))`, at least 1.
    Sqrt,
    /// `round(log2(n_features))`, at least 1.
    Log2,
    /// A fixed fraction of the features, at least 1.
    Fraction(f64),
    /// An explicit count, clamped to `[1, n_features]`.
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `n_features` columns.
    pub fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (n_features as f64).log2().round() as usize,
            MaxFeatures::Fraction(f) => (n_features as f64 * f).round() as usize,
            MaxFeatures::Count(c) => c,
        };
        k.clamp(1, n_features)
    }
}

/// Hyper-parameters for a single CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth; `None` grows until other limits stop it.
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Feature subsampling per split.
    pub max_features: MaxFeatures,
    /// Minimum total-weighted impurity decrease for a split to be kept.
    pub min_impurity_decrease: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            min_impurity_decrease: 0.0,
        }
    }
}

impl TreeConfig {
    fn validate(&self) -> Result<()> {
        if self.min_samples_split < 2 {
            return Err(MlError::BadConfig("min_samples_split must be >= 2".into()));
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::BadConfig("min_samples_leaf must be >= 1".into()));
        }
        if let MaxFeatures::Fraction(f) = self.max_features {
            if !(f > 0.0 && f <= 1.0) {
                return Err(MlError::BadConfig(format!("max_features fraction {f}")));
            }
        }
        if self.min_impurity_decrease < 0.0 {
            return Err(MlError::BadConfig(
                "min_impurity_decrease must be >= 0".into(),
            ));
        }
        Ok(())
    }

    /// Fits a single tree. Sample weights are uniform; `sample_indices`
    /// selects (with repetition allowed) which rows participate, which is
    /// how the forest implements bootstrapping.
    pub fn fit_indices(
        &self,
        x: &Matrix,
        y: &[f64],
        sample_indices: &[usize],
        seed: u64,
    ) -> Result<FittedTree> {
        self.validate()?;
        check_fit_input(x, y)?;
        if sample_indices.is_empty() {
            return Err(MlError::BadInput("no sample indices".into()));
        }
        let mut builder = Builder {
            x,
            y,
            config: self,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            importances: vec![0.0; x.n_features()],
            n_total: sample_indices.len() as f64,
            feature_pool: (0..x.n_features()).collect(),
            scratch: Vec::new(),
        };
        let mut indices = sample_indices.to_vec();
        builder.grow(&mut indices, 0);
        let sum: f64 = builder.importances.iter().sum();
        if sum > 0.0 {
            for v in &mut builder.importances {
                *v /= sum;
            }
        }
        Ok(FittedTree {
            tree: Tree {
                nodes: builder.nodes,
                n_features: x.n_features(),
            },
            feature_importances: builder.importances,
        })
    }

    /// Fits a single tree on all rows.
    pub fn fit(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<FittedTree> {
        let all: Vec<usize> = (0..x.n_rows()).collect();
        self.fit_indices(x, y, &all, seed)
    }
}

/// A fitted CART tree together with its MDI importances.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FittedTree {
    /// The tree structure.
    pub tree: Tree,
    /// Normalized Mean Decrease Impurity per feature (sums to 1, or all
    /// zeros when the tree never split).
    pub feature_importances: Vec<f64>,
}

impl Regressor for FittedTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        self.tree.predict_row(row)
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: &'a TreeConfig,
    rng: StdRng,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    n_total: f64,
    feature_pool: Vec<usize>,
    scratch: Vec<(f64, f64)>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    left_impurity: f64,
    right_impurity: f64,
    n_left: usize,
}

impl<'a> Builder<'a> {
    /// Grows the subtree over `indices`, returning its node id.
    fn grow(&mut self, indices: &mut [usize], depth: usize) -> u32 {
        let n = indices.len();
        let (mean, impurity) = mean_and_variance(self.y, indices);

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: LEAF,
            value: mean,
            cover: n as f64,
            impurity,
        });

        let depth_ok = self.config.max_depth.map_or(true, |d| depth < d);
        if !depth_ok || n < self.config.min_samples_split || impurity <= 1e-14 {
            return node_id;
        }

        let Some(split) = self.best_split(indices, impurity) else {
            return node_id;
        };

        // Weighted impurity decrease, sklearn-style: (n/N) * Δimpurity.
        let weighted_gain = (n as f64 / self.n_total) * split.gain;
        if weighted_gain <= self.config.min_impurity_decrease {
            return node_id;
        }
        self.importances[split.feature] += weighted_gain;

        // Partition indices in place around the threshold.
        let mid = partition(indices, |&i| {
            self.x.get(i, split.feature) <= split.threshold
        });
        debug_assert_eq!(mid, split.n_left);
        let (left_slice, right_slice) = indices.split_at_mut(mid);

        let left_id = self.grow(left_slice, depth + 1);
        let right_id = self.grow(right_slice, depth + 1);
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left_id;
        node.right = right_id;
        // Stored impurities of children were computed during their grow.
        let _ = (split.left_impurity, split.right_impurity);
        node_id
    }

    /// Exact greedy search over a random feature subset. Large nodes fan
    /// the per-feature scans out across rayon workers; tie-breaking is
    /// identical in both paths (highest gain, then lowest feature index),
    /// so results do not depend on the execution path.
    fn best_split(&mut self, indices: &[usize], node_impurity: f64) -> Option<BestSplit> {
        let n = indices.len();
        let k = self.config.max_features.resolve(self.x.n_features());
        // Partial Fisher-Yates: the first k entries become the candidates.
        for i in 0..k {
            let j = i + (self.rng.next_u64_range(self.feature_pool.len() - i)) as usize;
            self.feature_pool.swap(i, j);
        }
        // Ascending feature order so exact gain ties break toward the
        // lowest feature index regardless of the shuffle (sklearn's fixed
        // scan order has the same property).
        self.feature_pool[..k].sort_unstable();
        let min_leaf = self.config.min_samples_leaf;

        if k * n >= PARALLEL_SPLIT_CELLS {
            self.feature_pool[..k]
                .par_iter()
                .map(|&feature| {
                    let mut scratch = Vec::with_capacity(n);
                    scan_feature(
                        self.x,
                        self.y,
                        indices,
                        feature,
                        node_impurity,
                        min_leaf,
                        &mut scratch,
                    )
                })
                .reduce(|| None, pick_better)
        } else {
            let mut best: Option<BestSplit> = None;
            // Move the scratch buffer out to appease the borrow checker.
            let mut scratch = std::mem::take(&mut self.scratch);
            for slot in 0..k {
                let feature = self.feature_pool[slot];
                let candidate = scan_feature(
                    self.x,
                    self.y,
                    indices,
                    feature,
                    node_impurity,
                    min_leaf,
                    &mut scratch,
                );
                best = pick_better(best, candidate);
            }
            self.scratch = scratch;
            best
        }
    }
}

/// Keeps the better of two candidate splits: higher gain wins, exact ties
/// break toward the lower feature index.
fn pick_better(a: Option<BestSplit>, b: Option<BestSplit>) -> Option<BestSplit> {
    match (a, b) {
        (None, x) => x,
        (x, None) => x,
        (Some(x), Some(y)) => {
            if y.gain > x.gain || (y.gain == x.gain && y.feature < x.feature) {
                Some(y)
            } else {
                Some(x)
            }
        }
    }
}

/// Scans one feature for the best variance-reducing threshold.
fn scan_feature(
    x: &Matrix,
    y: &[f64],
    indices: &[usize],
    feature: usize,
    node_impurity: f64,
    min_leaf: usize,
    scratch: &mut Vec<(f64, f64)>,
) -> Option<BestSplit> {
    let n = indices.len();
    scratch.clear();
    scratch.extend(indices.iter().map(|&i| (x.get(i, feature), y[i])));
    scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN rejected at fit entry"));

    let total_sum: f64 = scratch.iter().map(|p| p.1).sum();
    let total_sq: f64 = scratch.iter().map(|p| p.1 * p.1).sum();
    let mut best: Option<BestSplit> = None;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    for i in 0..n - 1 {
        let (xv, yv) = scratch[i];
        left_sum += yv;
        left_sq += yv * yv;
        let n_left = i + 1;
        let n_right = n - n_left;
        if n_left < min_leaf || n_right < min_leaf {
            continue;
        }
        let next_x = scratch[i + 1].0;
        if next_x <= xv {
            continue; // no threshold separates equal values
        }
        let lmean = left_sum / n_left as f64;
        let rsum = total_sum - left_sum;
        let rmean = rsum / n_right as f64;
        let limp = left_sq / n_left as f64 - lmean * lmean;
        let rimp = (total_sq - left_sq) / n_right as f64 - rmean * rmean;
        let gain = node_impurity
            - (n_left as f64 / n as f64) * limp.max(0.0)
            - (n_right as f64 / n as f64) * rimp.max(0.0);
        if gain > best.as_ref().map_or(1e-14, |b| b.gain) {
            // Midpoint threshold; guard against midpoint rounding to
            // the upper value on adjacent floats.
            let mut threshold = 0.5 * (xv + next_x);
            if threshold >= next_x {
                threshold = xv;
            }
            best = Some(BestSplit {
                feature,
                threshold,
                gain,
                left_impurity: limp.max(0.0),
                right_impurity: rimp.max(0.0),
                n_left,
            });
        }
    }
    best
}

/// Stable partition: moves elements satisfying `pred` to the front,
/// returning the boundary. Order within each side is preserved so the
/// builder stays deterministic.
fn partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let kept: Vec<T> = slice.iter().copied().filter(|t| pred(t)).collect();
    let rest: Vec<T> = slice.iter().copied().filter(|t| !pred(t)).collect();
    let mid = kept.len();
    slice[..mid].copy_from_slice(&kept);
    slice[mid..].copy_from_slice(&rest);
    mid
}

fn mean_and_variance(y: &[f64], indices: &[usize]) -> (f64, f64) {
    let n = indices.len() as f64;
    let sum: f64 = indices.iter().map(|&i| y[i]).sum();
    let mean = sum / n;
    let var = indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / n;
    (mean, var.max(0.0))
}

/// Small extension over `StdRng` for bounded draws without an extra dep.
trait RngRange {
    fn next_u64_range(&mut self, bound: usize) -> u64;
}

impl RngRange for StdRng {
    fn next_u64_range(&mut self, bound: usize) -> u64 {
        use rand::Rng;
        if bound <= 1 {
            0
        } else {
            self.gen_range(0..bound as u64)
        }
    }
}

/// Draws `n` bootstrap sample indices from `0..n` (with replacement).
pub fn bootstrap_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    use rand::Rng;
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Shuffles `0..n` and returns the permutation.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 0 for x < 5, 10 for x >= 5: one split suffices.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_a_step_function_with_one_split() {
        let (x, y) = step_data();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        assert_eq!(fit.tree.depth(), 1);
        assert_eq!(fit.tree.n_leaves(), 2);
        assert_eq!(fit.predict_row(&[2.0]), 0.0);
        assert_eq!(fit.predict_row(&[7.0]), 10.0);
        // All importance on the single informative feature.
        assert!((fit.feature_importances[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolates_piecewise_constant() {
        // Deep tree memorizes distinct points exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        for i in 0..20 {
            assert_eq!(fit.predict_row(&[i as f64]), (i * i) as f64);
        }
    }

    #[test]
    fn max_depth_limits_growth() {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig {
            max_depth: Some(2),
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        assert!(fit.tree.depth() <= 2);
        assert!(fit.tree.n_leaves() <= 4);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = step_data();
        let fit = TreeConfig {
            min_samples_leaf: 3,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        for node in &fit.tree.nodes {
            if node.is_leaf() {
                assert!(node.cover >= 3.0, "leaf cover {}", node.cover);
            }
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &[4.0; 6], 0).unwrap();
        assert_eq!(fit.tree.nodes.len(), 1);
        assert_eq!(fit.predict_row(&[100.0]), 4.0);
        assert!(fit.feature_importances.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn importance_favors_informative_feature() {
        // Feature 0 carries the signal; feature 1 is a constant.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 5.0 + i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        assert!(fit.feature_importances[0] > 0.99);
        assert!(fit.feature_importances[1] < 0.01);
    }

    #[test]
    fn expected_value_matches_training_mean() {
        let (x, y) = step_data();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((fit.tree.expected_value() - mean).abs() < 1e-9);
    }

    #[test]
    fn validates_config() {
        let (x, y) = step_data();
        let bad = TreeConfig {
            min_samples_split: 1,
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, 0).is_err());
        let bad = TreeConfig {
            min_samples_leaf: 0,
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, 0).is_err());
        let bad = TreeConfig {
            max_features: MaxFeatures::Fraction(0.0),
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, 0).is_err());
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Fraction(0.3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(0).resolve(10), 1);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let cfg = TreeConfig {
            max_features: MaxFeatures::Count(2),
            ..Default::default()
        };
        let a = cfg.fit(&x, &y, 7).unwrap();
        let b = cfg.fit(&x, &y, 7).unwrap();
        assert_eq!(a.tree.nodes, b.tree.nodes);
    }

    #[test]
    fn partition_is_stable() {
        let mut v = vec![5, 1, 4, 2, 3];
        let mid = partition(&mut v, |&x| x % 2 == 0);
        assert_eq!(mid, 2);
        assert_eq!(v, vec![4, 2, 5, 1, 3]);
    }
}
