//! The online rollover controller: refit → persist → hot-swap.
//!
//! A rollover answers a monitor trigger (or the scheduled cadence) in
//! four steps, all on the caller's thread:
//!
//! 1. **Refit.** A training matrix is cut from the accumulated feature
//!    history — rows whose `horizon`-day forward return is already
//!    observable — and the GBDT is refit. When a previous model exists,
//!    the fit is warm-started from it ([`GbdtConfig::fit_warm`]): the
//!    new rounds boost on top of the inherited trees, so the refit pays
//!    only for the configured `n_estimators`, not for relearning the
//!    base.
//! 2. **Persist.** The fitted model is wrapped into a [`ModelArtifact`]
//!    (via [`c100_core::export::online_gbdt_artifact`]) and saved
//!    through the [`ArtifactStore`], whose retention knob prunes old
//!    generations as refits accumulate.
//! 3. **Reload.** If a live server address is configured, `POST
//!    /reload` makes the running `c100-serve` instance pick the new
//!    artifact up; in-flight requests keep their already-resolved
//!    predictor, so the swap drops nothing.
//! 4. **Observe.** An [`Event::ModelRolledOver`] is emitted with the
//!    measured pause (fit start → serving the new model), feeding the
//!    `model_rollovers_*` metrics.

use std::sync::Arc;
use std::time::{Duration, Instant};

use c100_core::export::online_gbdt_artifact;
use c100_core::pipeline::ScenarioSpec;
use c100_core::profile::Profile;
use c100_ml::data::Matrix;
use c100_ml::gbdt::{Gbdt, GbdtConfig};
use c100_ml::Regressor;
use c100_obs::{Event, NullObserver, RunObserver, Tracer};
use c100_store::{ArtifactStore, ModelArtifact};
use c100_timeseries::AppendFrame;

use crate::client;
use crate::monitor::DriftMonitor;
use crate::{Result, StreamError};

/// What caused a rollover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloverTrigger {
    /// First fit once enough history accumulated.
    Initial,
    /// The scheduled refit cadence elapsed.
    Scheduled,
    /// The feature distribution drifted from the fit-time baseline.
    Drift,
    /// The rolling forecast MSE decayed past the configured ratio.
    Decay,
}

impl RolloverTrigger {
    /// Stable label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RolloverTrigger::Initial => "initial",
            RolloverTrigger::Scheduled => "scheduled",
            RolloverTrigger::Drift => "drift",
            RolloverTrigger::Decay => "decay",
        }
    }
}

/// The currently-deployed model plus its fit-time baselines.
pub struct ActiveModel {
    /// The fitted ensemble used for local forecasts.
    pub model: Gbdt,
    /// Content address of the persisted artifact.
    pub artifact_id: String,
    /// Drift baseline captured from this model's training matrix.
    pub drift: DriftMonitor,
    /// Training MSE — the decay monitor's reference.
    pub train_mse: f64,
}

/// What one [`RolloverController::roll`] call did.
#[derive(Debug, Clone)]
pub struct RolloverOutcome {
    /// Content address of the new artifact.
    pub artifact_id: String,
    /// Whether the fit warm-started from the previous model.
    pub warm: bool,
    /// What fired the rollover.
    pub trigger: RolloverTrigger,
    /// Fit start → new model persisted (and live-reloaded, if a server
    /// is attached).
    pub pause: Duration,
    /// Whether a live server was told to reload.
    pub reloaded: bool,
    /// Rows in the training matrix.
    pub train_rows: usize,
    /// Training MSE of the new model.
    pub train_mse: f64,
}

/// Drives refit → persist → reload → observe for one scenario.
pub struct RolloverController {
    spec: ScenarioSpec,
    profile: Profile,
    config: GbdtConfig,
    store: ArtifactStore,
    drift_threshold: f64,
    reload_addr: Option<String>,
    observer: Arc<dyn RunObserver>,
    tracer: Option<Arc<Tracer>>,
    current: Option<ActiveModel>,
    rolls: usize,
}

impl RolloverController {
    /// A controller persisting into `store`; no live server attached.
    pub fn new(
        spec: ScenarioSpec,
        profile: Profile,
        config: GbdtConfig,
        store: ArtifactStore,
    ) -> RolloverController {
        RolloverController {
            spec,
            profile,
            config,
            store,
            drift_threshold: 8.0,
            reload_addr: None,
            observer: Arc::new(NullObserver),
            tracer: None,
            current: None,
            rolls: 0,
        }
    }

    /// Attaches a live `c100-serve` address; every successful persist
    /// is followed by `POST /reload` there.
    pub fn with_reload_addr(mut self, addr: impl Into<String>) -> RolloverController {
        self.reload_addr = Some(addr.into());
        self
    }

    /// Routes rollover events into `observer` (e.g. a
    /// [`c100_obs::MetricsRegistry`]).
    pub fn with_observer(mut self, observer: Arc<dyn RunObserver>) -> RolloverController {
        self.observer = observer;
        self
    }

    /// Records `stream.refit` / `stream.persist` / `stream.reload`
    /// spans on `tracer`.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> RolloverController {
        self.tracer = Some(tracer);
        self
    }

    /// Z-score threshold baked into each new model's [`DriftMonitor`].
    pub fn with_drift_threshold(mut self, z: f64) -> RolloverController {
        self.drift_threshold = z;
        self
    }

    /// The deployed model, once the initial fit happened.
    pub fn active(&self) -> Option<&ActiveModel> {
        self.current.as_ref()
    }

    /// The backing store (for inspection in tests and reports).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Rollovers performed so far.
    pub fn rolls(&self) -> usize {
        self.rolls
    }

    /// Cuts the training set from the history: rows in
    /// `[first_complete, len − horizon)` paired with their
    /// `horizon`-day forward close return.
    fn training_set(
        &self,
        history: &AppendFrame,
        closes: &[f64],
        first_complete: usize,
    ) -> Result<(Matrix, Vec<f64>)> {
        let horizon = self.spec.window;
        let n = history.len();
        if closes.len() != n {
            return Err(StreamError::Config(format!(
                "history has {n} rows but {} closes",
                closes.len()
            )));
        }
        if first_complete + horizon + 2 > n {
            return Err(StreamError::Config(format!(
                "not enough matured history to fit: {n} rows, first complete {first_complete}, \
                 horizon {horizon}"
            )));
        }
        let end = n - horizon;
        let width = history.names().len();
        let mut flat = Vec::with_capacity((end - first_complete) * width);
        let mut y = Vec::with_capacity(end - first_complete);
        for r in first_complete..end {
            flat.extend(history.row(r));
            y.push(closes[r + horizon] / closes[r] - 1.0);
        }
        let x = Matrix::from_row_major(flat, width)?;
        Ok((x, y))
    }

    /// Refits (warm when possible), persists, reloads the live server,
    /// and swaps the active model. Returns what happened; on any error
    /// the previously-active model stays deployed.
    pub fn roll(
        &mut self,
        history: &AppendFrame,
        closes: &[f64],
        first_complete: usize,
        trigger: RolloverTrigger,
    ) -> Result<RolloverOutcome> {
        let scenario = self.spec.id();
        let (x, y) = self.training_set(history, closes, first_complete)?;
        let started = Instant::now();

        let warm = self.current.is_some();
        let seed = self
            .profile
            .stage_seed(&format!("{scenario}:stream-roll-{}", self.rolls));
        let model = {
            let _span = self
                .tracer
                .as_deref()
                .map(|t| t.span(&scenario, "stream.refit"));
            match &self.current {
                Some(active) => self.config.fit_warm(&active.model, &x, &y, seed)?,
                None => self.config.fit(&x, &y, seed)?,
            }
        };

        let train_mse = y
            .iter()
            .enumerate()
            .map(|(r, target)| {
                let err = model.predict_row(x.row(r)) - target;
                err * err
            })
            .sum::<f64>()
            / y.len() as f64;
        let drift = DriftMonitor::fit(&x, self.drift_threshold);

        let artifact = self.build_artifact(history, first_complete, model.clone(), x.n_rows());
        let entry = {
            let _span = self
                .tracer
                .as_deref()
                .map(|t| t.span(&scenario, "stream.persist"));
            self.store.save(&artifact)?
        };

        let reloaded = if let Some(addr) = &self.reload_addr {
            let _span = self
                .tracer
                .as_deref()
                .map(|t| t.span(&scenario, "stream.reload"));
            client::post_json_ok(addr, "/reload", "")?;
            true
        } else {
            false
        };

        let pause = started.elapsed();
        self.observer.on_event(&Event::ModelRolledOver {
            scenario: scenario.clone(),
            model: "gbdt".to_string(),
            artifact_id: entry.id.clone(),
            warm,
            micros: pause.as_micros() as u64,
        });

        self.current = Some(ActiveModel {
            model,
            artifact_id: entry.id.clone(),
            drift,
            train_mse,
        });
        self.rolls += 1;

        Ok(RolloverOutcome {
            artifact_id: entry.id,
            warm,
            trigger,
            pause,
            reloaded,
            train_rows: y.len(),
            train_mse,
        })
    }

    fn build_artifact(
        &self,
        history: &AppendFrame,
        first_complete: usize,
        model: Gbdt,
        train_rows: usize,
    ) -> ModelArtifact {
        let end = history.len() - self.spec.window;
        online_gbdt_artifact(
            &self.spec,
            &self.profile,
            history.names(),
            &self.config,
            model,
            train_rows as u64,
            &history.date_at(first_complete).to_string(),
            &history.date_at(end - 1).to_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_core::scenario::Period;
    use c100_obs::RecordingObserver;
    use c100_timeseries::Date;

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("c100_stream_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn history(n: usize) -> (AppendFrame, Vec<f64>) {
        let start = Date::from_ymd(2019, 1, 1).unwrap();
        let mut frame = AppendFrame::new(&["f0", "f1"]);
        let mut closes = Vec::with_capacity(n);
        for t in 0..n {
            let a = (t as f64 * 0.21).sin();
            let b = (t as f64 * 0.08).cos();
            frame.push_row(start.add_days(t as i32), &[a, b]).unwrap();
            closes.push(100.0 + 5.0 * a + 2.0 * b + t as f64 * 0.05);
        }
        (frame, closes)
    }

    fn controller(root: &std::path::Path) -> RolloverController {
        let spec = ScenarioSpec {
            period: Period::Y2019,
            window: 7,
        };
        let config = GbdtConfig {
            n_estimators: 8,
            max_depth: 3,
            ..Default::default()
        };
        let store = ArtifactStore::open(root).unwrap().with_retention(3);
        RolloverController::new(spec, Profile::fast().with_seed(13), config, store)
    }

    #[test]
    fn cold_then_warm_roll_persists_and_swaps() {
        let root = temp_store("roll");
        let recorder = Arc::new(RecordingObserver::new());
        let mut controller =
            controller(&root).with_observer(recorder.clone() as Arc<dyn RunObserver>);
        let (frame, closes) = history(120);

        let cold = controller
            .roll(&frame, &closes, 10, RolloverTrigger::Initial)
            .unwrap();
        assert!(!cold.warm);
        assert!(!cold.reloaded);
        assert_eq!(cold.train_rows, 120 - 7 - 10);
        assert!(cold.train_mse.is_finite());
        assert!(controller.active().is_some());

        let (frame2, closes2) = history(160);
        let warm = controller
            .roll(&frame2, &closes2, 10, RolloverTrigger::Scheduled)
            .unwrap();
        assert!(warm.warm);
        assert_ne!(warm.artifact_id, cold.artifact_id);
        // The warm model embeds the base's 8 trees plus 8 new rounds.
        assert_eq!(controller.active().unwrap().model.trees.len(), 16);
        // Latest resolves to the warm artifact.
        assert_eq!(
            controller
                .store()
                .latest_family("2019_7", "gbdt")
                .unwrap()
                .id,
            warm.artifact_id
        );
        // One rollover event per roll, warm flag faithful.
        let events: Vec<_> = recorder
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::ModelRolledOver { .. }))
            .collect();
        assert_eq!(events.len(), 2);
        if let Event::ModelRolledOver { warm, .. } = &events[0] {
            assert!(!warm);
        }
        if let Event::ModelRolledOver { warm, .. } = &events[1] {
            assert!(warm);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn roll_rejects_immature_history() {
        let root = temp_store("short");
        let mut controller = controller(&root);
        let (frame, closes) = history(12);
        // 12 rows − 7 horizon leaves too little after first_complete 10.
        assert!(matches!(
            controller.roll(&frame, &closes, 10, RolloverTrigger::Initial),
            Err(StreamError::Config(_))
        ));
        assert!(controller.active().is_none());
        std::fs::remove_dir_all(&root).ok();
    }
}
