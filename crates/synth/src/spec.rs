//! Table-driven metric generation.
//!
//! Every observed metric is declared as a [`MetricSpec`]: how its value
//! derives from the latent paths (a log-linear factor mix, a bounded
//! oscillator, or a fully custom path), when its history starts, how it is
//! sampled (daily, or monthly publication steps for macro/search-trend
//! series) and, for a deliberate minority, a data-quality [`Defect`] that
//! gives the paper's cleaning phase something realistic to discard.
//!
//! [`materialize`] turns a list of specs into a
//! [`c100_timeseries::Frame`] over the observed window. Each metric draws
//! its measurement noise from its own RNG stream (seeded from the master
//! seed and the metric name), so adding or reordering metrics never
//! changes the values of the others.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use c100_timeseries::{Date, Frame, Series};

use crate::btc::BtcMarket;
use crate::latent::{gaussian, LatentPaths};
use crate::{DataCategory, SynthConfig};

/// Context handed to custom metric generators.
pub struct GenCtx<'a> {
    /// Run configuration.
    pub config: &'a SynthConfig,
    /// Latent factor paths (extended: warm-up + observed).
    pub latents: &'a LatentPaths,
    /// BTC market series (extended fields cover the warm-up).
    pub btc: &'a BtcMarket,
    /// Per-metric RNG stream.
    pub rng: StdRng,
}

impl<'a> GenCtx<'a> {
    /// Draws one standard normal from the metric's stream.
    pub fn noise(&mut self) -> f64 {
        gaussian(&mut self.rng)
    }
}

/// Shared generator closure behind [`MetricKind::Custom`].
pub type CustomGenerator = Arc<dyn Fn(&mut GenCtx) -> Vec<f64> + Send + Sync>;

/// How the metric's underlying (noise-free) path derives from the latents.
#[derive(Clone)]
pub enum MetricKind {
    /// `exp(base_ln + a·A + t·T + c·C + m·F + lv·(logP − logP₀) + σ·ε)`,
    /// with all factor values taken `lag` days in the past.
    LogLinear {
        /// Log of the metric's base level.
        base_ln: f64,
        /// Loading on adoption `A`.
        adoption: f64,
        /// Loading on the crypto trend `T`.
        trend: f64,
        /// Loading on the cycle `C`.
        cycle: f64,
        /// Loading on momentum `F`.
        momentum: f64,
        /// Loading on the BTC log-price level (demeaned at first obs day).
        level: f64,
        /// Days of lag applied to the factor values (the metric *trails*
        /// the market, destroying rather than creating predictivity).
        lag: usize,
    },
    /// Logistic squashing of a factor mix into `[lo, hi]` (oscillators,
    /// percentage shares, the fear-and-greed index).
    Bounded {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Loading on the trend.
        trend: f64,
        /// Loading on the cycle.
        cycle: f64,
        /// Loading on momentum.
        momentum: f64,
        /// Constant offset inside the logistic.
        bias: f64,
    },
    /// Fully custom generator returning the complete extended path.
    Custom(CustomGenerator),
}

/// Publication cadence of the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// A fresh value every day.
    Daily,
    /// Value refreshed on the first day of each month and held constant —
    /// macro releases and monthly Google-Trends figures.
    MonthlyStep,
    /// Value refreshed every Monday and held constant.
    WeeklyStep,
}

/// A deliberate data-quality defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// The feed freezes (stays flat) from this date onward.
    FlatAfter(Date),
    /// A missing-data outage over `[from, to]` (inclusive).
    MissingRange(Date, Date),
}

/// Declarative description of one observed metric.
#[derive(Clone)]
pub struct MetricSpec {
    /// Column name (paper vocabulary, e.g. `SplyAdrBalUSD100`).
    pub name: String,
    /// Data-source category.
    pub category: DataCategory,
    /// First date with data; earlier days are missing.
    pub start: Date,
    /// Measurement-noise sigma applied inside the transform.
    pub noise: f64,
    /// Path generator.
    pub kind: MetricKind,
    /// Publication cadence.
    pub sampling: Sampling,
    /// Optional deliberate quality defect.
    pub defect: Option<Defect>,
}

impl MetricSpec {
    /// A daily log-linear metric with no defect — the common case.
    #[allow(clippy::too_many_arguments)]
    pub fn log_linear(
        name: impl Into<String>,
        category: DataCategory,
        start: Date,
        base_ln: f64,
        loads: (f64, f64, f64, f64, f64),
        lag: usize,
        noise: f64,
    ) -> Self {
        let (adoption, trend, cycle, momentum, level) = loads;
        MetricSpec {
            name: name.into(),
            category,
            start,
            noise,
            kind: MetricKind::LogLinear {
                base_ln,
                adoption,
                trend,
                cycle,
                momentum,
                level,
                lag,
            },
            sampling: Sampling::Daily,
            defect: None,
        }
    }

    /// A bounded oscillator-style metric.
    pub fn bounded(
        name: impl Into<String>,
        category: DataCategory,
        start: Date,
        range: (f64, f64),
        loads: (f64, f64, f64),
        bias: f64,
        noise: f64,
    ) -> Self {
        let (trend, cycle, momentum) = loads;
        MetricSpec {
            name: name.into(),
            category,
            start,
            noise,
            kind: MetricKind::Bounded {
                lo: range.0,
                hi: range.1,
                trend,
                cycle,
                momentum,
                bias,
            },
            sampling: Sampling::Daily,
            defect: None,
        }
    }

    /// A custom-path metric.
    pub fn custom(
        name: impl Into<String>,
        category: DataCategory,
        start: Date,
        f: impl Fn(&mut GenCtx) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        MetricSpec {
            name: name.into(),
            category,
            start,
            noise: 0.0,
            kind: MetricKind::Custom(Arc::new(f)),
            sampling: Sampling::Daily,
            defect: None,
        }
    }

    /// Sets the sampling cadence.
    pub fn with_sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Attaches a defect.
    pub fn with_defect(mut self, defect: Defect) -> Self {
        self.defect = Some(defect);
        self
    }
}

/// FNV-1a hash of the metric name, mixed into its RNG seed.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Generates the extended (warm-up + observed) noise-free-then-noised path
/// for one spec.
fn generate_extended(spec: &MetricSpec, ctx: &mut GenCtx) -> Vec<f64> {
    let latents = ctx.latents;
    let n = latents.n_total();
    match &spec.kind {
        MetricKind::LogLinear {
            base_ln,
            adoption,
            trend,
            cycle,
            momentum,
            level,
            lag,
        } => {
            let lp0 = latents.log_price[latents.obs(0)];
            (0..n)
                .map(|t| {
                    let s = t.saturating_sub(*lag);
                    let exponent = base_ln
                        + adoption * latents.adoption[s]
                        + trend * latents.trend[s]
                        + cycle * latents.cycle[s]
                        + momentum * latents.momentum[s]
                        + level * (latents.log_price[s] - lp0)
                        + spec.noise * ctx.rng_noise();
                    exponent.exp()
                })
                .collect()
        }
        MetricKind::Bounded {
            lo,
            hi,
            trend,
            cycle,
            momentum,
            bias,
        } => (0..n)
            .map(|t| {
                let z = bias
                    + trend * latents.trend[t]
                    + cycle * latents.cycle[t]
                    + momentum * latents.momentum[t]
                    + spec.noise * ctx.rng_noise();
                lo + (hi - lo) / (1.0 + (-z).exp())
            })
            .collect(),
        MetricKind::Custom(f) => {
            let path = f(ctx);
            assert_eq!(
                path.len(),
                n,
                "custom metric {} returned wrong length",
                spec.name
            );
            path
        }
    }
}

impl<'a> GenCtx<'a> {
    fn rng_noise(&mut self) -> f64 {
        gaussian(&mut self.rng)
    }
}

/// Materializes a list of specs into an observed-window frame.
pub fn materialize(
    specs: &[MetricSpec],
    config: &SynthConfig,
    latents: &LatentPaths,
    btc: &BtcMarket,
) -> Frame {
    let n_obs = config.n_days();
    let mut frame = Frame::with_daily_index(config.start, n_obs);
    for spec in specs {
        let mut ctx = GenCtx {
            config,
            latents,
            btc,
            rng: StdRng::seed_from_u64(config.seed ^ name_hash(&spec.name)),
        };
        let extended = generate_extended(spec, &mut ctx);
        let mut values: Vec<f64> = extended[latents.warmup..].to_vec();

        apply_sampling(&mut values, config.start, spec.sampling);

        // Start-date cut-off: earlier days are missing.
        if spec.start > config.start {
            let first = spec.start.days_between(config.start).max(0) as usize;
            for v in values.iter_mut().take(first.min(n_obs)) {
                *v = f64::NAN;
            }
        }

        if let Some(defect) = spec.defect {
            apply_defect(&mut values, config.start, defect);
        }

        frame
            .push_column(Series::new(spec.name.clone(), values))
            .unwrap_or_else(|e| panic!("duplicate metric name {}: {e}", spec.name));
    }
    frame
}

fn apply_sampling(values: &mut [f64], start: Date, sampling: Sampling) {
    match sampling {
        Sampling::Daily => {}
        Sampling::MonthlyStep => {
            let mut held = values.first().copied().unwrap_or(f64::NAN);
            for (t, v) in values.iter_mut().enumerate() {
                let date = start.add_days(t as i32);
                if date.day() == 1 || t == 0 {
                    held = *v;
                } else {
                    *v = held;
                }
            }
        }
        Sampling::WeeklyStep => {
            let mut held = values.first().copied().unwrap_or(f64::NAN);
            for (t, v) in values.iter_mut().enumerate() {
                let date = start.add_days(t as i32);
                if date.weekday() == 0 || t == 0 {
                    held = *v;
                } else {
                    *v = held;
                }
            }
        }
    }
}

fn apply_defect(values: &mut [f64], start: Date, defect: Defect) {
    let idx_of = |d: Date| d.days_between(start).clamp(0, values.len() as i32) as usize;
    match defect {
        Defect::FlatAfter(date) => {
            let from = idx_of(date);
            if from < values.len() {
                let frozen = values[from];
                for v in values[from..].iter_mut() {
                    *v = frozen;
                }
            }
        }
        Defect::MissingRange(from, to) => {
            let lo = idx_of(from);
            let hi = idx_of(to.add_days(1));
            for v in values[lo..hi].iter_mut() {
                *v = f64::NAN;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;

    fn setup() -> (SynthConfig, LatentPaths, BtcMarket) {
        let cfg = SynthConfig::small(9);
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        (cfg, latents, btc)
    }

    #[test]
    fn log_linear_metric_is_positive_and_tracks_level() {
        let (cfg, latents, btc) = setup();
        let spec = MetricSpec::log_linear(
            "m_level",
            DataCategory::OnChainBtc,
            cfg.start,
            10.0,
            (0.0, 0.0, 0.0, 0.0, 1.0),
            0,
            0.01,
        );
        let frame = materialize(&[spec], &cfg, &latents, &btc);
        let col = frame.column("m_level").unwrap().values();
        assert!(col.iter().all(|v| *v > 0.0));
        // Level loading 1.0 with tiny noise ⇒ near-perfect correlation
        // with the BTC price.
        let corr = c100_timeseries::stats::pearson(col, &btc.close);
        assert!(corr > 0.95, "corr {corr}");
    }

    #[test]
    fn bounded_metric_respects_range() {
        let (cfg, latents, btc) = setup();
        let spec = MetricSpec::bounded(
            "osc",
            DataCategory::Sentiment,
            cfg.start,
            (0.0, 100.0),
            (0.5, 0.5, 2.0),
            0.0,
            0.5,
        );
        let frame = materialize(&[spec], &cfg, &latents, &btc);
        for v in frame.column("osc").unwrap().values() {
            assert!((0.0..=100.0).contains(v));
        }
    }

    #[test]
    fn start_date_blanks_prefix() {
        let (cfg, latents, btc) = setup();
        let late_start = cfg.start.add_days(100);
        let spec = MetricSpec::log_linear(
            "late",
            DataCategory::OnChainUsdc,
            late_start,
            1.0,
            (0.0, 0.0, 0.0, 0.0, 0.0),
            0,
            0.1,
        );
        let frame = materialize(&[spec], &cfg, &latents, &btc);
        let col = frame.column("late").unwrap();
        assert_eq!(col.first_present(), Some(100));
    }

    #[test]
    fn monthly_step_holds_values() {
        let (cfg, latents, btc) = setup();
        let spec = MetricSpec::log_linear(
            "monthly",
            DataCategory::Macro,
            cfg.start,
            2.0,
            (0.0, 1.0, 0.0, 0.0, 0.0),
            0,
            0.2,
        )
        .with_sampling(Sampling::MonthlyStep);
        let frame = materialize(&[spec], &cfg, &latents, &btc);
        let col = frame.column("monthly").unwrap().values();
        // cfg starts 2019-01-01: the whole of January holds one value.
        for t in 1..31 {
            assert_eq!(col[t], col[0], "day {t}");
        }
        assert_ne!(col[31], col[30]); // February 1st refreshes
    }

    #[test]
    fn defects_apply() {
        let (cfg, latents, btc) = setup();
        let flat = MetricSpec::log_linear(
            "flat",
            DataCategory::Macro,
            cfg.start,
            0.0,
            (0.0, 0.0, 0.0, 1.0, 0.0),
            0,
            0.3,
        )
        .with_defect(Defect::FlatAfter(cfg.start.add_days(50)));
        let gap = MetricSpec::log_linear(
            "gap",
            DataCategory::Macro,
            cfg.start,
            0.0,
            (0.0, 0.0, 0.0, 1.0, 0.0),
            0,
            0.3,
        )
        .with_defect(Defect::MissingRange(
            cfg.start.add_days(10),
            cfg.start.add_days(20),
        ));
        let frame = materialize(&[flat, gap], &cfg, &latents, &btc);
        let flat_col = frame.column("flat").unwrap();
        assert!(flat_col.longest_flat_run() >= cfg.n_days() - 51);
        let gap_col = frame.column("gap").unwrap();
        assert_eq!(gap_col.longest_missing_run(), 11);
        assert!(!gap_col.values()[9].is_nan());
        assert!(gap_col.values()[10].is_nan());
        assert!(gap_col.values()[20].is_nan());
        assert!(!gap_col.values()[21].is_nan());
    }

    #[test]
    fn metric_streams_are_independent() {
        // Same metric materialized alone or alongside others: identical.
        let (cfg, latents, btc) = setup();
        let make = |name: &str| {
            MetricSpec::log_linear(
                name,
                DataCategory::OnChainBtc,
                cfg.start,
                5.0,
                (0.3, 0.2, 0.1, 0.0, 0.5),
                0,
                0.2,
            )
        };
        let solo = materialize(&[make("alpha")], &cfg, &latents, &btc);
        let multi = materialize(&[make("zeta"), make("alpha")], &cfg, &latents, &btc);
        assert_eq!(
            solo.column("alpha").unwrap().values(),
            multi.column("alpha").unwrap().values()
        );
    }

    #[test]
    fn lag_makes_metric_trail_the_market() {
        let (cfg, latents, btc) = setup();
        let lagged = MetricSpec::log_linear(
            "lagged",
            DataCategory::OnChainBtc,
            cfg.start,
            0.0,
            (0.0, 0.0, 0.0, 0.0, 1.0),
            30,
            0.0,
        );
        let frame = materialize(&[lagged], &cfg, &latents, &btc);
        let col = frame.column("lagged").unwrap().values();
        // Metric at t equals price at t-30 ⇒ corr with price lagged 30.
        let corr_lag =
            c100_timeseries::stats::pearson(&col[30..], &btc.close[..btc.close.len() - 30]);
        assert!(corr_lag > 0.999, "corr {corr_lag}");
    }
}
