//! Matrix configuration and its expansion into cell plans.
//!
//! Everything that affects cell *results* lives in [`MatrixConfig`] and
//! is folded into the run fingerprint; anything that only affects *how*
//! the run executes (thread count) is deliberately excluded, so a resume
//! at a different parallelism is still the same run.

use c100_core::index::IndexFamilySpec;
use c100_synth::latent::LatentPaths;
use c100_synth::regime::{segments_for, MarketRegime, RegimeConfig};
use c100_synth::SynthConfig;
use c100_timeseries::split::walk_forward_folds;

use crate::{fnv1a64, MatrixError, Result};

/// Fewest training rows a cell may fit on.
pub const MIN_TRAIN_ROWS: usize = 40;
/// Fewest test rows a cell may evaluate on.
pub const MIN_TEST_ROWS: usize = 10;
/// Train fraction of fraction-split windows (regime segments, full span).
pub const TRAIN_FRACTION: f64 = 0.8;
/// Bump when the cell protocol changes in a result-affecting way — it
/// feeds the fingerprint, so stale stores are refused instead of mixed.
pub const CELL_PROTOCOL_VERSION: u64 = 1;

/// Full description of one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Master seed; per-cell model seeds derive from it and the cell id.
    pub seed: u64,
    /// The synthetic market the run evaluates on.
    pub synth: SynthConfig,
    /// Index-family axis.
    pub families: Vec<IndexFamilySpec>,
    /// Forecast-horizon axis, days ahead.
    pub horizons: Vec<usize>,
    /// Regime labeling parameters for the window axis.
    pub regime: RegimeConfig,
    /// Regime segments shorter than this never become windows (they
    /// could not satisfy [`MIN_TRAIN_ROWS`] + [`MIN_TEST_ROWS`] anyway).
    pub min_window_days: usize,
    /// Number of rolling-origin walk-forward folds (0 disables them).
    pub wf_folds: usize,
    /// Whether the full observed span is itself a window.
    pub include_full: bool,
}

impl MatrixConfig {
    /// The default matrix: 4 families × (regime segments + 5 walk-forward
    /// folds + full span) × 3 horizons over the given synth market.
    pub fn new(seed: u64, synth: SynthConfig) -> MatrixConfig {
        MatrixConfig {
            seed,
            synth,
            families: IndexFamilySpec::default_families(),
            horizons: vec![1, 7, 30],
            regime: RegimeConfig::default(),
            min_window_days: 90,
            wf_folds: 5,
            include_full: true,
        }
    }

    /// Validates the axes before expansion.
    pub fn validate(&self) -> Result<()> {
        if self.families.is_empty() {
            return Err(MatrixError::Config("no index families selected".into()));
        }
        if self.horizons.is_empty() {
            return Err(MatrixError::Config("no horizons selected".into()));
        }
        if let Some(h) = self.horizons.iter().find(|&&h| h == 0) {
            let _ = h;
            return Err(MatrixError::Config("horizon 0 is not a forecast".into()));
        }
        if !self.include_full && self.wf_folds == 0 && self.min_window_days == usize::MAX {
            return Err(MatrixError::Config("no windows selected".into()));
        }
        Ok(())
    }

    /// Canonical description of everything that affects cell results.
    /// The fingerprint is its hash; two configs with equal descriptions
    /// are the same run.
    pub fn canonical_description(&self) -> String {
        let families: Vec<String> = self.families.iter().map(|f| f.id()).collect();
        let horizons: Vec<String> = self.horizons.iter().map(|h| h.to_string()).collect();
        format!(
            "v{};seed={};synth={},{},{},{},{};families={};horizons={};\
             regime={},{},{};min_window={};wf_folds={};full={}",
            CELL_PROTOCOL_VERSION,
            self.seed,
            self.synth.seed,
            self.synth.start,
            self.synth.end,
            self.synth.n_assets,
            self.synth.warmup_days,
            families.join(","),
            horizons.join(","),
            self.regime.lookback,
            self.regime.threshold,
            self.regime.min_segment,
            self.min_window_days,
            self.wf_folds,
            self.include_full,
        )
    }

    /// The run fingerprint: 16 hex digits over the canonical description.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(&self.canonical_description()))
    }

    /// Deterministic per-cell model seed.
    pub fn cell_seed(&self, cell_id: &str) -> u64 {
        fnv1a64(&format!("{}:{}", self.seed, cell_id))
    }
}

/// How a window's train/test boundary is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitRule {
    /// Chronological [`TRAIN_FRACTION`] split of the usable rows.
    Fraction,
    /// Train ends at this absolute row (walk-forward folds): rows
    /// `[prep_start, row)` train, rows `[row, eval_end)` test.
    TrainEndsAt(usize),
}

/// What kind of evaluation window a cell runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// The whole observed span.
    Full,
    /// One contiguous regime segment.
    Regime(MarketRegime),
    /// One rolling-origin walk-forward fold.
    WalkForward,
}

impl WindowKind {
    /// Stable label used in `matrix.json`.
    pub fn label(&self) -> &'static str {
        match self {
            WindowKind::Full => "full",
            WindowKind::Regime(r) => r.label(),
            WindowKind::WalkForward => "walkforward",
        }
    }
}

/// One evaluation window of the matrix.
///
/// `prep_start..prep_end` is the row range dataset prep runs over — the
/// prep-cache key together with the family. Walk-forward folds all use
/// the full span as their prep range (their training prefixes are cut
/// from one shared binned matrix) and restrict evaluation via
/// `eval_end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalWindow {
    /// Stable window id (`full`, `bull-0`, `wf-2`, …).
    pub id: String,
    /// The window's kind.
    pub kind: WindowKind,
    /// First row (inclusive) of the prep range, in observed-day rows.
    pub prep_start: usize,
    /// One past the last row of the prep range.
    pub prep_end: usize,
    /// One past the last row cells of this window may evaluate on
    /// (≤ `prep_end`).
    pub eval_end: usize,
    /// Train/test boundary rule.
    pub split: SplitRule,
}

/// One cell of the matrix: an (index family, window, horizon) triple.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Index into [`MatrixConfig::families`].
    pub family_idx: usize,
    /// Family id (denormalized for labels).
    pub family_id: String,
    /// The evaluation window.
    pub window: EvalWindow,
    /// Forecast horizon, days ahead.
    pub horizon: usize,
}

impl CellPlan {
    /// Stable cell id: `family/window/h<horizon>`.
    pub fn id(&self) -> String {
        format!("{}/{}/h{}", self.family_id, self.window.id, self.horizon)
    }
}

/// Expands the window axis for a simulated latent path.
///
/// Pure function of the config and latents: regime segments come from
/// the seeded latent state, walk-forward folds from row arithmetic —
/// so every thread count (and every resume) sees the same windows.
pub fn expand_windows(config: &MatrixConfig, latents: &LatentPaths) -> Result<Vec<EvalWindow>> {
    let n_days = config.synth.n_days();
    let mut windows = Vec::new();

    if config.include_full {
        windows.push(EvalWindow {
            id: "full".to_string(),
            kind: WindowKind::Full,
            prep_start: 0,
            prep_end: n_days,
            eval_end: n_days,
            split: SplitRule::Fraction,
        });
    }

    // Regime segments, numbered in chronological order so ids stay
    // stable even when two segments share a regime.
    for (ordinal, segment) in segments_for(latents, &config.regime).iter().enumerate() {
        if segment.len() < config.min_window_days {
            continue;
        }
        windows.push(EvalWindow {
            id: format!("{}-{}", segment.regime.label(), ordinal),
            kind: WindowKind::Regime(segment.regime),
            prep_start: segment.start,
            prep_end: segment.end,
            eval_end: segment.end,
            split: SplitRule::Fraction,
        });
    }

    if config.wf_folds > 0 {
        let min_train = MIN_TRAIN_ROWS.max(n_days / (config.wf_folds + 1));
        let folds = walk_forward_folds(n_days, config.wf_folds, min_train)
            .map_err(|e| MatrixError::Config(format!("walk-forward folds: {e}")))?;
        for (k, (train, test)) in folds.iter().enumerate() {
            windows.push(EvalWindow {
                id: format!("wf-{k}"),
                kind: WindowKind::WalkForward,
                prep_start: 0,
                prep_end: n_days,
                eval_end: test.end,
                split: SplitRule::TrainEndsAt(train.end),
            });
        }
    }

    Ok(windows)
}

/// Expands the full cross-product into cell plans, ordered family-major
/// so consecutive tasks share prep (the scheduler deals them round-robin,
/// which spreads each prep group over the workers).
pub fn expand_cells(config: &MatrixConfig, windows: &[EvalWindow]) -> Vec<CellPlan> {
    let mut cells =
        Vec::with_capacity(config.families.len() * windows.len() * config.horizons.len());
    for (family_idx, family) in config.families.iter().enumerate() {
        let family_id = family.id();
        for window in windows {
            for &horizon in &config.horizons {
                cells.push(CellPlan {
                    family_idx,
                    family_id: family_id.clone(),
                    window: window.clone(),
                    horizon,
                });
            }
        }
    }
    cells
}

/// Parses a comma-separated horizon list (`1,7,30`), naming the
/// offending token and the accepted form on failure.
pub fn parse_horizons(text: &str) -> Result<Vec<usize>> {
    let mut horizons = Vec::new();
    for token in text.split(',') {
        let token = token.trim();
        let h: usize = token.parse().map_err(|_| {
            MatrixError::Config(format!(
                "invalid horizon {token:?}: not a number \
                 (expected a comma-separated list of days, e.g. 1,7,30)"
            ))
        })?;
        if h == 0 {
            return Err(MatrixError::Config(format!(
                "invalid horizon {token:?}: horizon 0 is not a forecast \
                 (expected days >= 1, e.g. 1,7,30)"
            )));
        }
        horizons.push(h);
    }
    if horizons.is_empty() {
        return Err(MatrixError::Config(
            "no horizons given (expected a comma-separated list of days, e.g. 1,7,30)".into(),
        ));
    }
    Ok(horizons)
}

/// Parses a comma-separated family list (`top100,crix30r30`), delegating
/// per-token diagnostics to [`IndexFamilySpec::parse`].
pub fn parse_families(text: &str) -> Result<Vec<IndexFamilySpec>> {
    let mut families = Vec::new();
    for token in text.split(',') {
        families.push(
            IndexFamilySpec::parse(token.trim()).map_err(|e| MatrixError::Config(e.to_string()))?,
        );
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_synth::latent::simulate;

    fn config() -> MatrixConfig {
        MatrixConfig::new(7, SynthConfig::small(7))
    }

    #[test]
    fn fingerprint_ignores_nothing_result_affecting() {
        let base = config();
        assert_eq!(base.fingerprint(), config().fingerprint());
        let mut seeded = config();
        seeded.seed = 8;
        assert_ne!(base.fingerprint(), seeded.fingerprint());
        let mut horizons = config();
        horizons.horizons = vec![1, 7];
        assert_ne!(base.fingerprint(), horizons.fingerprint());
        let mut families = config();
        families.families.pop();
        assert_ne!(base.fingerprint(), families.fingerprint());
    }

    #[test]
    fn windows_are_deterministic_and_well_formed() {
        let cfg = config();
        let latents = simulate(&cfg.synth);
        let a = expand_windows(&cfg, &latents).unwrap();
        let b = expand_windows(&cfg, &latents).unwrap();
        assert_eq!(a, b);
        let n_days = cfg.synth.n_days();
        for w in &a {
            assert!(w.prep_start < w.prep_end);
            assert!(w.prep_end <= n_days);
            assert!(w.eval_end <= w.prep_end);
            if let SplitRule::TrainEndsAt(row) = w.split {
                assert!(row > w.prep_start && row < w.eval_end);
            }
        }
        assert!(a.iter().any(|w| w.kind == WindowKind::Full));
        assert_eq!(
            a.iter()
                .filter(|w| w.kind == WindowKind::WalkForward)
                .count(),
            cfg.wf_folds
        );
    }

    #[test]
    fn cell_ids_are_unique() {
        let cfg = config();
        let latents = simulate(&cfg.synth);
        let windows = expand_windows(&cfg, &latents).unwrap();
        let cells = expand_cells(&cfg, &windows);
        let mut ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(
            before,
            cfg.families.len() * windows.len() * cfg.horizons.len()
        );
    }

    #[test]
    fn cell_seeds_differ_by_cell() {
        let cfg = config();
        assert_ne!(cfg.cell_seed("a/full/h1"), cfg.cell_seed("a/full/h7"));
        // And are stable.
        assert_eq!(cfg.cell_seed("a/full/h1"), cfg.cell_seed("a/full/h1"));
    }

    #[test]
    fn horizon_parse_errors_name_token() {
        assert_eq!(parse_horizons("1, 7,30").unwrap(), vec![1, 7, 30]);
        let err = parse_horizons("1,week").unwrap_err().to_string();
        assert!(err.contains("\"week\""), "{err}");
        assert!(err.contains("e.g. 1,7,30"), "{err}");
        let err = parse_horizons("0").unwrap_err().to_string();
        assert!(err.contains("horizon 0 is not a forecast"), "{err}");
    }

    #[test]
    fn family_parse_delegates_diagnostics() {
        assert_eq!(parse_families("top100,crix30r30").unwrap().len(), 2);
        let err = parse_families("top100,frankenindex")
            .unwrap_err()
            .to_string();
        assert!(err.contains("\"frankenindex\""), "{err}");
        assert!(err.contains("valid families:"), "{err}");
    }

    #[test]
    fn validation_rejects_empty_axes() {
        let mut cfg = config();
        cfg.horizons.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.families.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = config();
        cfg.horizons = vec![0];
        assert!(cfg.validate().is_err());
        assert!(config().validate().is_ok());
    }
}
