//! End-to-end serving: a real pipeline run exported into a store and
//! served over HTTP — `/predict` parity with the CLI path (including
//! coalesced micro-batches), load shedding under a saturating burst,
//! hot reload without dropping in-flight requests, and metrics
//! exposition.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use c100_core::export::export_scenario_artifacts;
use c100_core::pipeline::{run_scenario, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_obs::{MetricsRegistry, Tracer};
use c100_serve::{ServeConfig, Server};
use c100_store::{ArtifactStore, BatchPredictor, ModelArtifact, ModelPayload};
use c100_synth::{generate, SynthConfig};

// ---------------------------------------------------------------- helpers

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_serving_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Minimal HTTP client: one request, the full response text back. The
/// write side is half-closed after the request so the keep-alive
/// server answers, sees end-of-input, and releases the connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let raw = match body {
        Some(body) => format!(
            "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\n\r\n"),
    };
    stream.write_all(raw.as_bytes()).expect("write request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").expect("head terminator").1
}

/// The `"forecasts":[...]` values exactly as the server printed them.
fn forecast_strings(body: &str) -> Vec<String> {
    let start = body.find("\"forecasts\":[").expect("forecasts field") + "\"forecasts\":[".len();
    let end = body[start..].find(']').expect("closing bracket") + start;
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.to_string())
        .collect()
}

/// A small fitted RF artifact for tests that don't need the pipeline.
fn quick_artifact(scenario: &str, period: &str, window: u64, seed: u64) -> ModelArtifact {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|_| (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r[0] - 2.0 * r[2]).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let model = RandomForestConfig {
        n_estimators: 8,
        max_depth: Some(5),
        ..Default::default()
    }
    .fit(&x, &y, seed)
    .unwrap();
    ModelArtifact {
        scenario: scenario.into(),
        period: period.into(),
        window,
        features: (0..4).map(|i| format!("feat_{i}")).collect(),
        profile: "fast".into(),
        seed,
        train_rows: x.n_rows() as u64,
        train_start: "2019-01-01".into(),
        train_end: "2019-03-21".into(),
        hyperparameters: BTreeMap::new(),
        model: ModelPayload::Rf(model),
    }
}

fn rows_json(rows: &[Vec<f64>]) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(|v| format!("{v}")).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

// ------------------------------------------------------------------ tests

/// The acceptance bar: `/predict` responses render the same forecast
/// text the CLI writes to its forecast CSV, both for a lone request
/// and for requests coalesced into one micro-batch.
#[test]
fn predict_parity_with_cli_path_including_coalesced_batches() {
    let data = generate(&SynthConfig::small(181));
    let profile = Profile::fast().with_seed(31);
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    let result = run_scenario(&data, &spec, &profile).unwrap();

    let dir = temp_dir("parity");
    let mut store = ArtifactStore::open(&dir).unwrap();
    export_scenario_artifacts(&mut store, &result, &profile).unwrap();
    let entry = store.latest_family("2019_7", "rf").unwrap().clone();
    let artifact = store.load(&entry.id).unwrap();

    // Reference: the exact path `repro predict` takes (validate frame,
    // batch-predict). Its output lands in a CSV via `{v}` Display
    // formatting — the same rendering the server must produce.
    let refs: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
    let scenario = &result.scenario;
    let test_frame = scenario
        .frame
        .row_slice(scenario.split_row, scenario.frame.len())
        .unwrap()
        .select(&refs)
        .unwrap();
    let reference = BatchPredictor::new(artifact)
        .predict_frame(&test_frame)
        .unwrap();
    let reference_text: Vec<String> = reference.iter().map(|v| format!("{v}")).collect();

    // Row-major copy of the frame for request bodies.
    let rows: Vec<Vec<f64>> = (0..test_frame.len())
        .map(|r| {
            refs.iter()
                .map(|name| test_frame.column(name).unwrap().values()[r])
                .collect()
        })
        .collect();
    let columns_json = {
        let quoted: Vec<String> = refs.iter().map(|c| format!("\"{c}\"")).collect();
        format!("[{}]", quoted.join(","))
    };

    let mut config = ServeConfig::new(&dir, "127.0.0.1:0");
    config.workers = 4;
    config.max_batch = 8;
    config.max_wait = Duration::from_millis(10);
    let tracer = Arc::new(Tracer::new());
    let server = Server::start(
        config,
        Arc::new(MetricsRegistry::new()),
        Some(tracer.clone()),
    )
    .unwrap();
    let addr = server.local_addr();

    // 1) One request with all rows, schema-checked via `columns`.
    let body = format!(
        "{{\"scenario\":\"2019_7\",\"model\":\"rf\",\"columns\":{columns_json},\"rows\":{}}}",
        rows_json(&rows)
    );
    let response = http(addr, "POST", "/predict", Some(&body));
    assert_eq!(status_of(&response), 200, "{response}");
    assert_eq!(forecast_strings(body_of(&response)), reference_text);
    assert!(body_of(&response).contains(&format!("\"artifact\":\"{}\"", entry.id)));

    // 2) Concurrent single-row requests, coalesced by the batcher into
    //    shared predict calls: every row must still render identically.
    let handles: Vec<_> = rows
        .iter()
        .take(24)
        .enumerate()
        .map(|(i, row)| {
            let body = format!(
                "{{\"artifact\":\"{}\",\"rows\":{}}}",
                entry.id,
                rows_json(std::slice::from_ref(row))
            );
            std::thread::spawn(move || (i, http(addr, "POST", "/predict", Some(&body))))
        })
        .collect();
    for handle in handles {
        let (i, response) = handle.join().unwrap();
        assert_eq!(status_of(&response), 200, "row {i}: {response}");
        let forecasts = forecast_strings(body_of(&response));
        assert_eq!(forecasts.len(), 1);
        assert_eq!(forecasts[0], reference_text[i], "row {i} diverged");
    }

    // The batcher actually coalesced (some flush carried > 1 row) and
    // the serve spans reached the tracer.
    let registry = server.registry();
    let snapshot = registry.snapshot();
    let batch_hist = snapshot
        .histograms
        .get("serve.batch_rows")
        .expect("batch-size histogram");
    assert!(batch_hist.count >= 1);
    server.shutdown();
    let span_names: std::collections::BTreeSet<&str> =
        tracer.snapshot().iter().map(|s| s.name).collect();
    for name in [
        "serve.accept",
        "serve.parse",
        "serve.batch",
        "serve.predict",
    ] {
        assert!(span_names.contains(name), "missing span {name}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A saturating burst: tiny queue, one worker. Every response is 200
/// or a deliberate 503 shed (never another 5xx, never a hang), and the
/// shed counter in `/metrics` matches the 503s clients saw.
#[test]
fn saturating_burst_sheds_503_and_counts_them() {
    let dir = temp_dir("burst");
    let artifact = quick_artifact("2019_7", "2019", 7, 7);
    let id = ArtifactStore::open(&dir)
        .unwrap()
        .save(&artifact)
        .unwrap()
        .id;

    let mut config = ServeConfig::new(&dir, "127.0.0.1:0");
    config.workers = 1;
    config.queue_depth = 2;
    config.max_batch = 4;
    config.max_wait = Duration::from_millis(1);
    let server = Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap();
    let addr = server.local_addr();

    // 48 rows per request gives the lone worker real work per pop.
    let rows: Vec<Vec<f64>> = (0..48)
        .map(|r| (0..4).map(|c| (r * 4 + c) as f64 * 0.01).collect())
        .collect();
    let body = Arc::new(format!(
        "{{\"artifact\":\"{id}\",\"rows\":{}}}",
        rows_json(&rows)
    ));

    let handles: Vec<_> = (0..64)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || status_of(&http(addr, "POST", "/predict", Some(&body))))
        })
        .collect();
    let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let oks = statuses.iter().filter(|&&s| s == 200).count();
    let sheds = statuses.iter().filter(|&&s| s == 503).count();
    assert_eq!(
        oks + sheds,
        statuses.len(),
        "only 200s and shed 503s allowed, got {statuses:?}"
    );
    assert!(oks >= 1, "some requests must get through");
    assert!(
        sheds >= 1,
        "a 64-connection burst against queue depth 2 must shed"
    );

    // The server is still healthy and reports the sheds.
    let metrics = http(addr, "GET", "/metrics", None);
    assert_eq!(status_of(&metrics), 200);
    let metrics_body = body_of(&metrics);
    assert!(
        metrics_body.contains(&format!("serve_sheds_total {sheds}")),
        "shed count mismatch: clients saw {sheds}\n{metrics_body}"
    );
    assert!(metrics_body.contains("http_requests_total"));
    assert!(metrics_body.contains("serve_request_micros_predict_bucket{le=\"+Inf\"}"));
    assert!(metrics_body.contains("serve_queue_depth"));
    // The latency split is live: queue-wait and per-endpoint handler
    // histograms recorded, and nothing is in flight anymore.
    assert!(metrics_body.contains("serve_queue_wait_micros_count"));
    assert!(metrics_body.contains("serve_handler_micros_predict_count"));
    // The scrape holds its own in-flight guard while snapshotting, so
    // with the burst drained the gauge reads exactly 1 (this request).
    assert!(
        metrics_body.contains("serve_inflight_requests 1"),
        "in-flight gauge leaked\n{metrics_body}"
    );
    assert_eq!(status_of(&http(addr, "GET", "/healthz", None)), 200);

    // The flight recorder kept the sheds alongside the served requests.
    let flight = http(addr, "GET", "/debug/flight", None);
    assert_eq!(status_of(&flight), 200);
    let flight_body = body_of(&flight);
    let shed_records = flight_body.matches("\"kind\": \"shed\"").count();
    assert!(
        shed_records >= 1 && shed_records <= sheds,
        "flight sheds {shed_records} vs client 503s {sheds}"
    );
    assert!(flight_body.contains("\"kind\": \"request\""));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// When every worker is blocked waiting on the same batcher shard, the
/// batch can never fill — the shard must flush immediately instead of
/// sitting out `max_wait`. With the deliberately huge 5s deadline here,
/// the pre-fix batcher would need ~20s for these volleys; the early
/// flush finishes them in milliseconds.
#[test]
fn blocked_single_row_submitters_flush_early_without_deadline_wait() {
    let dir = temp_dir("earlyflush");
    let artifact = quick_artifact("2019_7", "2019", 7, 23);
    let id = ArtifactStore::open(&dir)
        .unwrap()
        .save(&artifact)
        .unwrap()
        .id;

    let mut config = ServeConfig::new(&dir, "127.0.0.1:0");
    config.workers = 2;
    config.max_batch = 64; // can never fill from 2 blocked workers
    config.max_wait = Duration::from_secs(5); // a trap, not a budget
    let server = Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap();
    let addr = server.local_addr();

    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let body = format!(
                "{{\"artifact\":\"{id}\",\"rows\":{}}}",
                rows_json(&[vec![0.25; 4]])
            );
            std::thread::spawn(move || {
                (0..4)
                    .map(|_| status_of(&http(addr, "POST", "/predict", Some(&body))))
                    .collect::<Vec<u16>>()
            })
        })
        .collect();
    for handle in handles {
        assert!(handle.join().unwrap().iter().all(|&s| s == 200));
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "16 single-row predicts took {elapsed:?}; batcher waited out its deadline"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `POST /reload` makes externally exported artifacts servable while
/// requests against the old model keep streaming through untouched.
#[test]
fn reload_picks_up_new_artifacts_without_dropping_inflight_requests() {
    let dir = temp_dir("reload");
    let first = quick_artifact("2019_7", "2019", 7, 11);
    let first_id = ArtifactStore::open(&dir).unwrap().save(&first).unwrap().id;

    let mut config = ServeConfig::new(&dir, "127.0.0.1:0");
    config.workers = 3;
    config.max_batch = 4;
    let server = Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap();
    let addr = server.local_addr();

    // Before the export, the second scenario is unknown.
    let probe = format!(
        "{{\"scenario\":\"2017_30\",\"rows\":{}}}",
        rows_json(&[vec![0.1; 4]])
    );
    assert_eq!(
        status_of(&http(addr, "POST", "/predict", Some(&probe))),
        404
    );

    // Keep a stream of requests against the first model in flight
    // while the reload happens.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let inflight: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            let body = format!(
                "{{\"artifact\":\"{first_id}\",\"rows\":{}}}",
                rows_json(&[vec![0.5; 4], vec![-0.5; 4]])
            );
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    statuses.push(status_of(&http(addr, "POST", "/predict", Some(&body))));
                }
                statuses
            })
        })
        .collect();

    // A second process exports a new model into the same store.
    let second = quick_artifact("2017_30", "2017", 30, 13);
    let second_id = ArtifactStore::open(&dir).unwrap().save(&second).unwrap().id;

    let reload = http(addr, "POST", "/reload", None);
    assert_eq!(status_of(&reload), 200);
    assert!(
        body_of(&reload).contains(&format!("\"{second_id}\"")),
        "{reload}"
    );

    // The new scenario now serves; resolution by family too.
    let by_scenario = format!(
        "{{\"scenario\":\"2017_30\",\"model\":\"rf\",\"rows\":{}}}",
        rows_json(&[vec![0.1; 4]])
    );
    let response = http(addr, "POST", "/predict", Some(&by_scenario));
    assert_eq!(status_of(&response), 200, "{response}");
    assert!(body_of(&response).contains(&format!("\"artifact\":\"{second_id}\"")));

    // In-flight traffic never saw an error.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for handle in inflight {
        let statuses = handle.join().unwrap();
        assert!(!statuses.is_empty());
        assert!(
            statuses.iter().all(|&s| s == 200),
            "in-flight requests disturbed by reload: {statuses:?}"
        );
    }

    // /models lists both artifacts after the reload.
    let models = http(addr, "GET", "/models", None);
    assert!(body_of(&models).contains(&first_id));
    assert!(body_of(&models).contains(&second_id));

    // Freshness is observable: the reload counted, the last-reload
    // timestamp is set, and the model age restarted from the swap.
    let metrics_response = http(addr, "GET", "/metrics", None);
    let metrics_body = body_of(&metrics_response);
    assert!(
        metrics_body.contains("serve_reloads_total 1"),
        "{metrics_body}"
    );
    let age: f64 = metrics_body
        .lines()
        .find_map(|l| l.strip_prefix("serve_model_age_seconds "))
        .expect("model age gauge missing")
        .trim()
        .parse()
        .unwrap();
    assert!((0.0..60.0).contains(&age), "age {age}");
    let stamp: f64 = metrics_body
        .lines()
        .find_map(|l| l.strip_prefix("serve_last_reload_timestamp_seconds "))
        .expect("last-reload timestamp gauge missing")
        .trim()
        .parse()
        .unwrap();
    assert!(stamp > 1.0e9, "stamp {stamp} is not a unix timestamp");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `POST /shutdown` drains gracefully: the waiting thread unblocks,
/// every thread joins, a second server can rebind the port, and the
/// configured flight path holds the post-mortem dump.
#[test]
fn post_shutdown_drains_and_releases_the_port() {
    let dir = temp_dir("shutdown");
    let artifact = quick_artifact("2019_7", "2019", 7, 19);
    ArtifactStore::open(&dir).unwrap().save(&artifact).unwrap();

    let flight_path = dir.join("flight.json");
    let mut config = ServeConfig::new(&dir, "127.0.0.1:0");
    config.flight_path = Some(flight_path.clone());
    let server = Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap();
    let addr = server.local_addr();
    let waiter = std::thread::spawn(move || server.wait());

    assert_eq!(status_of(&http(addr, "GET", "/healthz", None)), 200);
    let response = http(addr, "POST", "/shutdown", None);
    assert_eq!(status_of(&response), 200);
    waiter.join().expect("wait() returns after /shutdown");

    // The port is free again.
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "port still held after shutdown");

    // The drain wrote the flight recorder next to the store: the
    // healthz request and the shutdown marker are both in the dump.
    let dump = std::fs::read_to_string(&flight_path).expect("flight.json written on shutdown");
    let parsed = c100_obs::json::parse(&dump).expect("flight.json parses");
    assert!(parsed.req_uint("recorded").unwrap() >= 2);
    assert!(dump.contains("\"kind\": \"shutdown\""));
    assert!(dump.contains("healthz 200"));

    std::fs::remove_dir_all(&dir).ok();
}
