//! Shared model cache over an [`ArtifactStore`].
//!
//! The cache keys decoded [`BatchPredictor`]s by artifact id. Ids are
//! content addresses, so a cached predictor can never be stale — a
//! changed model is a *new* id — and the cache needs no invalidation,
//! only growth. [`reload`](ModelCache::reload) re-reads the store
//! manifest so ids exported by another process become resolvable;
//! requests already holding an `Arc<BatchPredictor>` are untouched by a
//! reload, which is what makes `POST /reload` a zero-downtime hot swap.
//!
//! The cache also owns the serving [`Engine`]. Every predictor it
//! builds uses the current engine; switching engines (the `/reload`
//! override) rebuilds cached predictors lazily on their next use, so an
//! engine swap is zero-downtime too — in-flight requests finish on the
//! engine they started with, and both engines are bit-identical anyway.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

use c100_obs::RunObserver;
use c100_store::{ArtifactStore, BatchPredictor, Engine, ManifestEntry, StoreError};

/// Thread-safe map from artifact id to a ready-to-serve predictor.
pub struct ModelCache {
    /// The store is consulted for manifest lookups and artifact loads;
    /// a `Mutex` suffices because hits never touch it.
    store: Mutex<ArtifactStore>,
    predictors: RwLock<HashMap<String, Arc<BatchPredictor>>>,
    /// Engine newly built predictors run on.
    engine: RwLock<Engine>,
    /// Observer newly built predictors report events through (for the
    /// server: its `MetricsRegistry`, so predict-path events land in
    /// the same snapshot as the HTTP metrics).
    observer: Option<Arc<dyn RunObserver>>,
}

impl ModelCache {
    /// Opens the artifact store under `root` and an empty cache serving
    /// on the default [`Engine`].
    pub fn open(root: &Path) -> Result<ModelCache, StoreError> {
        Ok(ModelCache {
            store: Mutex::new(ArtifactStore::open(root)?),
            predictors: RwLock::new(HashMap::new()),
            engine: RwLock::new(Engine::default()),
            observer: None,
        })
    }

    /// Selects the engine newly built predictors use.
    pub fn with_engine(self, engine: Engine) -> ModelCache {
        *self.engine.write().expect("engine lock poisoned") = engine;
        self
    }

    /// Attaches an observer every predictor this cache builds will
    /// report run events through.
    pub fn with_observer(mut self, observer: Arc<dyn RunObserver>) -> ModelCache {
        self.observer = Some(observer);
        self
    }

    /// The engine newly built predictors will run on.
    pub fn engine(&self) -> Engine {
        *self.engine.read().expect("engine lock poisoned")
    }

    /// The engine a request for `id` runs on right now: the cached
    /// predictor's engine if one is decoded, otherwise the engine the
    /// first request would build it with.
    pub fn active_engine(&self, id: &str) -> Engine {
        self.predictors
            .read()
            .expect("predictor cache poisoned")
            .get(id)
            .map_or_else(|| self.engine(), |p| p.engine())
    }

    /// All manifest entries currently visible, in save order.
    pub fn entries(&self) -> Vec<ManifestEntry> {
        self.store.lock().expect("store poisoned").list().to_vec()
    }

    /// Manifest entry for an exact artifact id.
    pub fn entry(&self, id: &str) -> Option<ManifestEntry> {
        self.store
            .lock()
            .expect("store poisoned")
            .list()
            .iter()
            .find(|e| e.id == id)
            .cloned()
    }

    /// Latest entry for a scenario, optionally narrowed to a model
    /// family (`rf` / `gbdt`).
    pub fn resolve_latest(&self, scenario: &str, family: Option<&str>) -> Option<ManifestEntry> {
        let store = self.store.lock().expect("store poisoned");
        match family {
            Some(f) => store.latest_family(scenario, f).cloned(),
            None => store.latest(scenario).cloned(),
        }
    }

    /// The predictor for an artifact id, loading and caching it on
    /// first use. A cached predictor built on a superseded engine is
    /// rebuilt here, which is what makes an engine switch take effect
    /// lazily. Concurrent first uses may both load; the artifact is
    /// immutable, so either copy is equally correct and one wins the
    /// insert.
    pub fn predictor(&self, id: &str) -> Result<Arc<BatchPredictor>, StoreError> {
        let engine = self.engine();
        if let Some(p) = self
            .predictors
            .read()
            .expect("predictor cache poisoned")
            .get(id)
        {
            if p.engine() == engine {
                return Ok(p.clone());
            }
        }
        let artifact = self.store.lock().expect("store poisoned").load(id)?;
        let mut predictor = BatchPredictor::new(artifact).with_engine(engine);
        if let Some(observer) = &self.observer {
            predictor = predictor.with_observer(observer.clone());
        }
        let predictor = Arc::new(predictor);
        let mut cache = self.predictors.write().expect("predictor cache poisoned");
        let slot = cache
            .entry(id.to_string())
            .or_insert_with(|| predictor.clone());
        if slot.engine() != engine {
            *slot = predictor;
        }
        Ok(slot.clone())
    }

    /// Re-reads the manifest from disk, optionally switching the
    /// serving engine first; returns ids that just became visible.
    /// Existing cached predictors are untouched — after an engine
    /// switch they rebuild lazily on next use.
    pub fn reload(&self, engine: Option<Engine>) -> Result<Vec<String>, StoreError> {
        if let Some(engine) = engine {
            *self.engine.write().expect("engine lock poisoned") = engine;
        }
        self.store.lock().expect("store poisoned").reload()
    }

    /// Number of predictors currently decoded and cached.
    pub fn cached(&self) -> usize {
        self.predictors
            .read()
            .expect("predictor cache poisoned")
            .len()
    }
}
