//! Satellite determinism contract: the same matrix configuration yields
//! a byte-identical `matrix.json` at 1 thread and at N threads — the
//! scheduler, the prep cache and the store must all be invisible in the
//! output.

use std::fs;
use std::path::PathBuf;

use c100_matrix::{run_matrix, MatrixConfig, MatrixObs};
use c100_synth::SynthConfig;
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_matrix_det_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deliberately small matrix (two families, two horizons, two folds)
/// so each proptest case stays cheap; window expansion still exercises
/// regime segments, folds and the full span.
fn tiny_config(seed: u64) -> MatrixConfig {
    let mut config = MatrixConfig::new(seed, SynthConfig::small(seed));
    config.families.truncate(2);
    config.horizons = vec![1, 7];
    config.wf_folds = 2;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn matrix_json_is_byte_equal_across_thread_counts(seed in 1u64..500, threads in 2usize..9) {
        let config = tiny_config(seed);
        let dir_single = tmp_dir(&format!("s{seed}_1"));
        let dir_multi = tmp_dir(&format!("s{seed}_{threads}"));

        let single = run_matrix(&config, 1, &dir_single, false, MatrixObs::disabled()).unwrap();
        let multi = run_matrix(&config, threads, &dir_multi, false, MatrixObs::disabled()).unwrap();

        let a = single.report.render();
        let b = multi.report.render();
        let _ = fs::remove_dir_all(&dir_single);
        let _ = fs::remove_dir_all(&dir_multi);

        prop_assert!(a == b, "matrix.json differs between 1 and {} threads (seed {})", threads, seed);
        prop_assert!(single.report.cells.len() >= 12);
    }
}
