//! # c100-ml
//!
//! The machine-learning substrate for the Crypto100 reproduction, built
//! from scratch because the paper's pipeline leans on scikit-learn and
//! XGBoost, neither of which has a faithful Rust equivalent:
//!
//! * [`tree`] — CART regression trees with exact greedy split search and
//!   Mean Decrease Impurity (MDI) accounting.
//! * [`engine`] — the unified [`Predictor`] serving API plus a compiled
//!   flat-ensemble backend ([`engine::CompiledEnsemble`]) that re-lays
//!   fitted trees into SoA arrays for fast, bit-identical batch
//!   inference.
//! * [`forest`] — bootstrap-aggregated random forests (rayon-parallel),
//!   matching sklearn's `RandomForestRegressor` hyper-parameter surface.
//! * [`gbdt`] — second-order gradient-boosted trees with XGBoost's split
//!   gain `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`, shrinkage and
//!   row/column subsampling.
//! * [`shap`] — polynomial-time TreeSHAP (Lundberg et al., Algorithm 2)
//!   producing exact Shapley values for either ensemble.
//! * [`importance`] — permutation feature importance measured as MSE
//!   degradation, exactly as the paper extracts PFI.
//! * [`model_selection`] — k-fold cross-validation and exhaustive grid
//!   search with MSE objective (the paper's fine-tuning protocol).
//! * [`mlp`] — a mini-batch-Adam multi-layer perceptron, the "complex
//!   model" of the paper's future-work section.
//! * [`metrics`] — regression metrics.
//!
//! Everything is deterministic given a seed: tree feature subsampling,
//! bootstrap draws, permutation shuffles and CV shuffling all derive from
//! explicit [`rand::rngs::StdRng`] streams.
//!
//! ## Example
//!
//! ```
//! use c100_ml::data::Matrix;
//! use c100_ml::forest::RandomForestConfig;
//! use c100_ml::Regressor;
//!
//! // y = 3 x0 (x1 is noise)
//! let x = Matrix::from_rows(&[
//!     vec![1.0, 9.0], vec![2.0, 1.0], vec![3.0, 5.0], vec![4.0, 2.0],
//!     vec![5.0, 8.0], vec![6.0, 3.0], vec![7.0, 7.0], vec![8.0, 4.0],
//! ]).unwrap();
//! let y: Vec<f64> = (1..=8).map(|v| 3.0 * v as f64).collect();
//! let model = RandomForestConfig { n_estimators: 30, ..Default::default() }
//!     .fit(&x, &y, 42).unwrap();
//! let pred = model.predict_row(&[4.5, 0.0]);
//! assert!((pred - 13.5).abs() < 4.0);
//! ```

pub mod data;
pub mod engine;
pub mod forest;
pub mod gbdt;
pub mod importance;
pub mod metrics;
pub mod mlp;
pub mod model_selection;
pub mod shap;
pub mod tree;

pub use engine::{CompiledEnsemble, Engine, Predictor};

/// Errors produced by model fitting and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The training data was empty or shapes disagreed.
    BadInput(String),
    /// A hyper-parameter value is out of its valid range.
    BadConfig(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::BadInput(s) => write!(f, "bad input: {s}"),
            MlError::BadConfig(s) => write!(f, "bad config: {s}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MlError>;

/// A fitted regression model that maps a feature row to a prediction.
pub trait Regressor {
    /// Predicts the target for a single feature row.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predicts the target for every row of `x`.
    fn predict(&self, x: &data::Matrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| self.predict_row(x.row(r)))
            .collect()
    }

    /// [`Regressor::predict`] with span tracing. The default ignores the
    /// context; models with internal structure worth profiling (e.g.
    /// [`forest::RandomForest`] per-tree spans) override it. Overrides
    /// must return bit-identical predictions to [`Regressor::predict`].
    fn predict_traced(&self, x: &data::Matrix, _trace: c100_obs::TraceCtx<'_>) -> Vec<f64> {
        self.predict(x)
    }
}

/// A model family that can be fitted to data; implemented by the config
/// structs so grid search can treat RF and GBDT uniformly.
pub trait Estimator: Clone + Send + Sync {
    /// The fitted model type.
    type Model: Regressor + Send + Sync;

    /// Fits the model on `x`/`y` with randomness derived from `seed`.
    fn fit_model(&self, x: &data::Matrix, y: &[f64], seed: u64) -> Result<Self::Model>;

    /// [`Estimator::fit_model`] with span tracing. The default ignores
    /// the context; families that fit sub-models worth profiling (e.g.
    /// [`forest::RandomForestConfig`] per-tree spans) override it.
    /// Overrides must produce a model identical to [`Estimator::fit_model`].
    fn fit_model_traced(
        &self,
        x: &data::Matrix,
        y: &[f64],
        seed: u64,
        _trace: c100_obs::TraceCtx<'_>,
    ) -> Result<Self::Model> {
        self.fit_model(x, y, seed)
    }

    /// Bin budget this estimator would use for histogram split search, or
    /// `None` for families without a binned path (exact split search, the
    /// MLP). Callers that fit the same data repeatedly — grid search, FRA,
    /// permutation importance — use it to build one [`data::BinnedMatrix`]
    /// and share it across fits via [`Estimator::fit_model_binned_traced`].
    fn histogram_bins(&self) -> Option<usize> {
        None
    }

    /// [`Estimator::fit_model_traced`] against a caller-built
    /// [`data::BinnedMatrix`]. The default ignores the binning and fits
    /// from raw values; binned families override it and must produce a
    /// model identical to [`Estimator::fit_model_traced`] whenever the
    /// binning matches what the config would build itself.
    fn fit_model_binned_traced(
        &self,
        x: &data::Matrix,
        y: &[f64],
        _binned: Option<&data::BinnedMatrix>,
        seed: u64,
        trace: c100_obs::TraceCtx<'_>,
    ) -> Result<Self::Model> {
        self.fit_model_traced(x, y, seed, trace)
    }
}
