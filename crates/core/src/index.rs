//! The Crypto100 index.
//!
//! ```text
//!                    Σ_{i=1..100} MarketCap_i
//! Crypto100 = ─────────────────────────────────────
//!              ( log₁₀( Σ_{i=1..100} MarketCap_i ) )^power
//! ```
//!
//! with `power = 7` chosen by the paper so the index is price-comparable
//! to Bitcoin (Figure 2a shows powers 7 vs 8, Figure 2b powers 6 vs 7).
//! [`power_comparison`] reproduces that tuning analysis.

use c100_synth::universe::Universe;
use c100_timeseries::{Frame, Series};

use crate::{CoreError, Result};

/// The paper's chosen exponent for the scaling factor.
pub const DEFAULT_POWER: f64 = 7.0;

/// Computes the Crypto100 value for a single day's top-100 cap sum.
pub fn crypto100_value(top100_cap: f64, power: f64) -> f64 {
    if top100_cap <= 1.0 {
        return f64::NAN;
    }
    top100_cap / top100_cap.log10().powf(power)
}

/// Builder for Crypto100 series at configurable scaling powers.
#[derive(Debug, Clone, Copy)]
pub struct Crypto100Builder {
    /// Exponent applied to the `log₁₀` scaling factor.
    pub power: f64,
}

impl Default for Crypto100Builder {
    fn default() -> Self {
        Crypto100Builder {
            power: DEFAULT_POWER,
        }
    }
}

impl Crypto100Builder {
    /// Computes the daily index series from the simulated universe.
    pub fn build(&self, universe: &Universe) -> Series {
        let values: Vec<f64> = universe
            .top100_cap
            .iter()
            .map(|&cap| crypto100_value(cap, self.power))
            .collect();
        Series::new(format!("crypto100_p{}", self.power), values)
    }
}

/// Summary of how one scaling power compares to the BTC price — the
/// quantities behind Figure 2.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PowerComparison {
    /// The scaling power.
    pub power: f64,
    /// Mean of index / BTC-price over the window (≈1 means comparable).
    pub mean_ratio_to_btc: f64,
    /// Pearson correlation with the BTC price.
    pub correlation_with_btc: f64,
    /// Index level on the first day.
    pub first_value: f64,
    /// Index level on the last day.
    pub last_value: f64,
}

/// Evaluates a set of candidate powers against the BTC price, reproducing
/// the paper's scaling-factor tuning (Figures 2a/2b).
pub fn power_comparison(
    universe: &Universe,
    btc_close: &[f64],
    powers: &[f64],
) -> Result<Vec<PowerComparison>> {
    if btc_close.len() != universe.n_days() {
        return Err(CoreError::Pipeline(format!(
            "BTC close has {} days, universe {}",
            btc_close.len(),
            universe.n_days()
        )));
    }
    Ok(powers
        .iter()
        .map(|&power| {
            let series = Crypto100Builder { power }.build(universe);
            let values = series.values();
            let ratios: Vec<f64> = values.iter().zip(btc_close).map(|(v, b)| v / b).collect();
            PowerComparison {
                power,
                mean_ratio_to_btc: c100_timeseries::stats::mean(&ratios),
                correlation_with_btc: c100_timeseries::stats::pearson(values, btc_close),
                first_value: values[0],
                last_value: *values.last().expect("non-empty index"),
            }
        })
        .collect())
}

/// A frame holding the Figure 2 series: BTC price plus the index at each
/// requested power, ready for CSV export.
pub fn figure2_frame(universe: &Universe, btc_close: &[f64], powers: &[f64]) -> Result<Frame> {
    let mut frame = Frame::with_daily_index(universe.start, universe.n_days());
    frame.push_column(Series::new("BTC_close", btc_close.to_vec()))?;
    for &power in powers {
        frame.push_column(Crypto100Builder { power }.build(universe))?;
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_synth::{generate, SynthConfig};

    fn universe() -> (c100_synth::MarketData, Universe) {
        let data = generate(&SynthConfig::small(71));
        let u = data.universe.clone();
        (data, u)
    }

    #[test]
    fn index_is_positive_and_monotone_in_cap() {
        // Higher top-100 cap ⇒ higher index, over the realistic range.
        let mut prev = 0.0;
        for cap in [1e9, 1e10, 1e11, 1e12] {
            let v = crypto100_value(cap, 7.0);
            assert!(v > prev, "cap {cap}");
            prev = v;
        }
    }

    #[test]
    fn degenerate_cap_is_nan() {
        assert!(crypto100_value(0.5, 7.0).is_nan());
        assert!(crypto100_value(0.0, 7.0).is_nan());
    }

    #[test]
    fn lower_power_scales_index_up() {
        // Dividing by a smaller power of log₁₀(cap) (>1) leaves more level.
        let (_, u) = universe();
        let p6 = Crypto100Builder { power: 6.0 }.build(&u);
        let p7 = Crypto100Builder { power: 7.0 }.build(&u);
        for (a, b) in p6.values().iter().zip(p7.values()) {
            assert!(a > b);
        }
    }

    #[test]
    fn power7_is_most_btc_comparable() {
        // Reproduces the paper's tuning: with caps around 10^11-10^12,
        // power 7 lands the index near the BTC price scale while 6 is far
        // above it.
        let (data, u) = universe();
        let comps = power_comparison(&u, &data.btc.close, &[6.0, 7.0, 8.0]).unwrap();
        let dist = |c: &PowerComparison| (c.mean_ratio_to_btc.log10()).abs();
        let d6 = dist(&comps[0]);
        let d7 = dist(&comps[1]);
        assert!(d7 < d6, "power 7 ratio distance {d7} vs power 6 {d6}");
        // The index correlates strongly with BTC regardless of power.
        for c in &comps {
            assert!(
                c.correlation_with_btc > 0.9,
                "power {} corr {}",
                c.power,
                c.correlation_with_btc
            );
        }
    }

    #[test]
    fn figure2_frame_has_all_series() {
        let (data, u) = universe();
        let frame = figure2_frame(&u, &data.btc.close, &[6.0, 7.0, 8.0]).unwrap();
        assert!(frame.has_column("BTC_close"));
        assert!(frame.has_column("crypto100_p6"));
        assert!(frame.has_column("crypto100_p7"));
        assert!(frame.has_column("crypto100_p8"));
        assert_eq!(frame.len(), u.n_days());
    }
}
