//! Self-tuning of worker count and queue depth from observed
//! queue wait.
//!
//! The signal is the `serve.queue_wait_micros` histogram the workers
//! already record: every `TUNE_INTERVAL` the tuner diffs the current
//! snapshot against the previous one, yielding a per-window histogram
//! whose p90 says how long *recent* requests waited for a worker. The
//! policy lives in [`plan`] — a pure function over that signal so the
//! escalation ladder is unit-testable without threads:
//!
//! 1. Queue wait above target → add a worker (the queue is backing up
//!    because service capacity is short).
//! 2. Sheds while workers are already maxed → widen the queue (capacity
//!    is capped, so trade latency for availability).
//! 3. Sustained calm (several consecutive quiet windows) → retire a
//!    worker, then narrow the queue back down.
//!
//! Mechanically, growing spawns a new worker thread; shrinking lowers
//! the target and lets a worker retire itself after it finishes its
//! current job (no interruption mid-request). Self-tuning is **off by
//! default** — `ServeConfig::self_tune` — because fixed worker/queue
//! sizing is load-bearing for shed-accounting tests and small
//! deployments.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use c100_obs::metrics::Bucket;
use c100_obs::HistogramSnapshot;

use crate::server::{spawn_worker, Shared};

/// How often the tuner samples the queue-wait histogram.
pub const TUNE_INTERVAL: Duration = Duration::from_millis(250);

/// Queue-wait p90 (µs) above which the pool grows.
pub const TARGET_QUEUE_WAIT_MICROS: f64 = 1_000.0;

/// Consecutive quiet windows before the tuner shrinks anything.
pub const SHRINK_QUIET_WINDOWS: u32 = 8;

/// Bounds the tuner must stay inside.
#[derive(Debug, Clone, Copy)]
pub struct TuneLimits {
    /// Fewest workers the pool may shrink to.
    pub min_workers: usize,
    /// Most workers the pool may grow to.
    pub max_workers: usize,
    /// Narrowest the queue may get.
    pub min_queue_depth: usize,
    /// Widest the queue may get.
    pub max_queue_depth: usize,
}

/// One sampling window's observations.
#[derive(Debug, Clone, Copy)]
pub struct TuneSignal {
    /// p90 queue wait over this window (µs); 0 when nothing was popped.
    pub p90_wait_micros: f64,
    /// Requests popped by workers this window.
    pub pops: u64,
    /// Requests shed (503) this window.
    pub sheds: u64,
}

/// Mutable tuner state carried between windows.
#[derive(Debug, Clone, Copy)]
pub struct TuneState {
    /// Current worker count.
    pub workers: usize,
    /// Current queue capacity.
    pub queue_depth: usize,
    /// Consecutive windows with traffic but negligible wait.
    pub quiet_windows: u32,
}

/// What [`plan`] decided for this window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneAction {
    /// Leave sizing alone.
    Hold,
    /// Grow or shrink the worker pool to this count.
    SetWorkers(usize),
    /// Rebound the queue to this capacity.
    SetQueueDepth(usize),
}

/// The tuning policy: maps one window's signal to an action and
/// updates the quiet-window streak. Pure — no threads, no clocks.
pub fn plan(signal: &TuneSignal, state: &mut TuneState, limits: &TuneLimits) -> TuneAction {
    if signal.pops == 0 && signal.sheds == 0 {
        // Idle window: no evidence either way. Do not count it as
        // quiet, or an unloaded server would shrink to minimum and
        // then pay grow latency on the next burst.
        return TuneAction::Hold;
    }
    if signal.p90_wait_micros > TARGET_QUEUE_WAIT_MICROS || signal.sheds > 0 {
        state.quiet_windows = 0;
        if state.workers < limits.max_workers {
            return TuneAction::SetWorkers(state.workers + 1);
        }
        if signal.sheds > 0 && state.queue_depth < limits.max_queue_depth {
            return TuneAction::SetQueueDepth((state.queue_depth * 2).min(limits.max_queue_depth));
        }
        return TuneAction::Hold;
    }
    if signal.p90_wait_micros < TARGET_QUEUE_WAIT_MICROS / 4.0 {
        state.quiet_windows = state.quiet_windows.saturating_add(1);
        if state.quiet_windows >= SHRINK_QUIET_WINDOWS {
            if state.workers > limits.min_workers {
                state.quiet_windows = 0;
                return TuneAction::SetWorkers(state.workers - 1);
            }
            if state.queue_depth > limits.min_queue_depth {
                state.quiet_windows = 0;
                return TuneAction::SetQueueDepth(
                    (state.queue_depth / 2).max(limits.min_queue_depth),
                );
            }
        }
    } else {
        state.quiet_windows = 0;
    }
    TuneAction::Hold
}

/// Subtracts `prev` from `cur` bucket-wise, producing the histogram of
/// only this window's observations. Falls back to `cur` whole-history
/// if the layouts diverge (cannot happen for one registry, but cheap
/// to guard).
pub fn delta_snapshot(prev: &HistogramSnapshot, cur: &HistogramSnapshot) -> HistogramSnapshot {
    if prev.buckets.len() != cur.buckets.len() {
        return cur.clone();
    }
    HistogramSnapshot {
        count: cur.count.saturating_sub(prev.count),
        sum_micros: cur.sum_micros.saturating_sub(prev.sum_micros),
        min_micros: 0,
        max_micros: cur.max_micros,
        buckets: cur
            .buckets
            .iter()
            .zip(&prev.buckets)
            .map(|(c, p)| Bucket {
                le_micros: c.le_micros,
                count: c.count.saturating_sub(p.count),
            })
            .collect(),
    }
}

/// Body of the tuner thread: sample, plan, apply, repeat until
/// shutdown is requested.
pub(crate) fn tuner_loop(shared: &Arc<Shared>, limits: TuneLimits) {
    let mut prev_wait = shared.metrics.queue_wait.snapshot();
    let mut prev_sheds = shared.metrics.sheds.value();
    let mut state = TuneState {
        workers: shared.active_workers.load(Ordering::Relaxed),
        queue_depth: shared.queue.capacity(),
        quiet_windows: 0,
    };
    shared.metrics.tuned_workers.set(state.workers as f64);
    shared
        .metrics
        .tuned_queue_depth
        .set(state.queue_depth as f64);

    loop {
        // Sleep on the shutdown condvar so a draining server never
        // waits out a full interval.
        {
            let (lock, cv) = &shared.shutdown_requested;
            let guard = lock.lock().expect("shutdown flag poisoned");
            if *guard {
                return;
            }
            let (guard, _) = cv
                .wait_timeout(guard, TUNE_INTERVAL)
                .expect("shutdown flag poisoned");
            if *guard {
                return;
            }
        }

        let wait = shared.metrics.queue_wait.snapshot();
        let sheds = shared.metrics.sheds.value();
        let window = delta_snapshot(&prev_wait, &wait);
        let signal = TuneSignal {
            p90_wait_micros: window.quantile_micros(0.9),
            pops: window.count,
            sheds: sheds.saturating_sub(prev_sheds),
        };
        prev_wait = wait;
        prev_sheds = sheds;
        state.workers = shared.active_workers.load(Ordering::Relaxed);
        state.queue_depth = shared.queue.capacity();

        match plan(&signal, &mut state, &limits) {
            TuneAction::Hold => {}
            TuneAction::SetWorkers(n) => {
                shared.target_workers.store(n, Ordering::SeqCst);
                // Growing spawns immediately; shrinking is handled by a
                // worker observing target < active after its next job.
                while shared.active_workers.load(Ordering::Relaxed) < n {
                    if spawn_worker(shared).is_err() {
                        break;
                    }
                }
                shared.metrics.tuned_workers.set(n as f64);
            }
            TuneAction::SetQueueDepth(depth) => {
                shared.queue.set_capacity(depth);
                shared.metrics.tuned_queue_depth.set(depth as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> TuneLimits {
        TuneLimits {
            min_workers: 1,
            max_workers: 4,
            min_queue_depth: 8,
            max_queue_depth: 64,
        }
    }

    fn state(workers: usize, queue_depth: usize) -> TuneState {
        TuneState {
            workers,
            queue_depth,
            quiet_windows: 0,
        }
    }

    #[test]
    fn idle_windows_hold_and_do_not_build_a_quiet_streak() {
        let mut s = state(2, 8);
        let idle = TuneSignal {
            p90_wait_micros: 0.0,
            pops: 0,
            sheds: 0,
        };
        for _ in 0..SHRINK_QUIET_WINDOWS * 2 {
            assert_eq!(plan(&idle, &mut s, &limits()), TuneAction::Hold);
        }
        assert_eq!(s.quiet_windows, 0);
    }

    #[test]
    fn high_queue_wait_grows_workers_until_the_cap() {
        let mut s = state(1, 8);
        let hot = TuneSignal {
            p90_wait_micros: TARGET_QUEUE_WAIT_MICROS * 5.0,
            pops: 100,
            sheds: 0,
        };
        assert_eq!(plan(&hot, &mut s, &limits()), TuneAction::SetWorkers(2));
        s.workers = 4; // at the cap, no sheds → nothing left to do
        assert_eq!(plan(&hot, &mut s, &limits()), TuneAction::Hold);
    }

    #[test]
    fn sheds_at_max_workers_widen_the_queue() {
        let mut s = state(4, 8);
        let shedding = TuneSignal {
            p90_wait_micros: TARGET_QUEUE_WAIT_MICROS * 2.0,
            pops: 50,
            sheds: 10,
        };
        assert_eq!(
            plan(&shedding, &mut s, &limits()),
            TuneAction::SetQueueDepth(16)
        );
        s.queue_depth = 64; // queue also at cap → hold
        assert_eq!(plan(&shedding, &mut s, &limits()), TuneAction::Hold);
    }

    #[test]
    fn sustained_calm_shrinks_workers_then_queue() {
        let mut s = state(2, 16);
        let calm = TuneSignal {
            p90_wait_micros: 10.0,
            pops: 5,
            sheds: 0,
        };
        let mut actions = Vec::new();
        for _ in 0..SHRINK_QUIET_WINDOWS * 3 {
            let a = plan(&calm, &mut s, &limits());
            if let TuneAction::SetWorkers(n) = a {
                s.workers = n;
            }
            if let TuneAction::SetQueueDepth(d) = a {
                s.queue_depth = d;
            }
            if a != TuneAction::Hold {
                actions.push(a);
            }
        }
        assert_eq!(
            actions,
            vec![TuneAction::SetWorkers(1), TuneAction::SetQueueDepth(8)]
        );
    }

    #[test]
    fn a_busy_window_resets_the_quiet_streak() {
        let mut s = state(2, 8);
        let calm = TuneSignal {
            p90_wait_micros: 10.0,
            pops: 5,
            sheds: 0,
        };
        for _ in 0..SHRINK_QUIET_WINDOWS - 1 {
            plan(&calm, &mut s, &limits());
        }
        let busy = TuneSignal {
            p90_wait_micros: TARGET_QUEUE_WAIT_MICROS / 2.0,
            pops: 100,
            sheds: 0,
        };
        assert_eq!(plan(&busy, &mut s, &limits()), TuneAction::Hold);
        assert_eq!(s.quiet_windows, 0);
    }

    #[test]
    fn delta_snapshot_isolates_one_window() {
        let bucket = |le, count| Bucket {
            le_micros: le,
            count,
        };
        let prev = HistogramSnapshot {
            count: 10,
            sum_micros: 1_000,
            min_micros: 10,
            max_micros: 500,
            buckets: vec![
                bucket(Some(100), 4),
                bucket(Some(1_000), 4),
                bucket(None, 2),
            ],
        };
        let cur = HistogramSnapshot {
            count: 30,
            sum_micros: 9_000,
            min_micros: 10,
            max_micros: 2_000,
            buckets: vec![
                bucket(Some(100), 6),
                bucket(Some(1_000), 12),
                bucket(None, 12),
            ],
        };
        let d = delta_snapshot(&prev, &cur);
        assert_eq!(d.count, 20);
        assert_eq!(d.sum_micros, 8_000);
        assert_eq!(d.buckets[0].count, 2);
        assert_eq!(d.buckets[1].count, 8);
        assert_eq!(d.buckets[2].count, 10);
        // p90 rank (18 of 20) lands in the overflow bucket, well above
        // the window's lower buckets.
        assert!(d.quantile_micros(0.9) > 1_000.0);
    }
}
