//! Property-based tests for the ML substrate. The SHAP local-accuracy
//! property is the strongest check in the crate: it holds exactly only for
//! a correct TreeSHAP implementation.

use c100_ml::data::{BinnedMatrix, Matrix};
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::metrics::{mae, mse, r2, rmse};
use c100_ml::model_selection::kfold_indices;
use c100_ml::shap::ShapExplainable;
use c100_ml::tree::{MaxFeatures, SplitMethod, TreeConfig};
use c100_ml::{CompiledEnsemble, Predictor, Regressor};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Strategy: a small random regression dataset.
fn dataset(max_rows: usize, n_features: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec(
        (
            prop::collection::vec(-100.0f64..100.0, n_features),
            -1000.0f64..1000.0,
        ),
        4..max_rows,
    )
    .prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows.iter().map(|(f, _)| f.clone()).collect();
        let y: Vec<f64> = rows.iter().map(|(_, t)| *t).collect();
        (x, y)
    })
}

/// Strategy: a dataset whose features and targets are small integers, so
/// every feature has far fewer distinct values than the default bin
/// budget and histogram split search must match exact search bit for bit.
fn integer_dataset(
    max_rows: usize,
    n_features: usize,
) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec(
        (prop::collection::vec(-20i64..21, n_features), -50i64..51),
        6..max_rows,
    )
    .prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows
            .iter()
            .map(|(f, _)| f.iter().map(|&v| v as f64).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|(_, t)| *t as f64).collect();
        (x, y)
    })
}

/// Probe rows for engine-parity checks: the training rows themselves,
/// affine-shifted copies (values the ensemble never saw, landing
/// between and beyond every stored threshold), and copies with NaN
/// holes punched at cycling positions (NaN must route right on every
/// engine and every path).
fn parity_probes(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut probes = rows.to_vec();
    probes.extend(
        rows.iter()
            .map(|r| r.iter().map(|v| v * 1.31 + 0.17).collect::<Vec<f64>>()),
    );
    probes.extend(rows.iter().enumerate().map(|(i, r)| {
        let mut r = r.clone();
        let w = r.len();
        r[i % w] = f64::NAN;
        if w > 1 {
            r[(i + 1) % w] = f64::NAN;
        }
        r
    }));
    probes
}

/// Asserts the compiled engine matches the interpreted model bit for
/// bit on every inference path: single-row traversal, the blocked raw
/// f64 batch, the quantized integer-compare batch, and the
/// heuristic-dispatching [`Predictor::predict_batch`].
fn assert_compiled_parity<M: Regressor>(
    model: &M,
    compiled: &CompiledEnsemble,
    probes: &[Vec<f64>],
) -> Result<(), TestCaseError> {
    let width = probes[0].len();
    let data: Vec<f64> = probes.iter().flat_map(|r| r.iter().copied()).collect();
    let expect: Vec<f64> = probes.iter().map(|r| model.predict_row(r)).collect();
    let mut raw = vec![0.0; probes.len()];
    compiled.predict_batch_raw(&data, width, &mut raw);
    let mut quant = vec![0.0; probes.len()];
    prop_assert!(compiled.predict_batch_quantized(&data, width, &mut quant));
    let mut auto = vec![0.0; probes.len()];
    compiled.predict_batch(&data, width, &mut auto);
    for (i, (row, want)) in probes.iter().zip(&expect).enumerate() {
        prop_assert_eq!(compiled.predict_row(row).to_bits(), want.to_bits());
        prop_assert_eq!(raw[i].to_bits(), want.to_bits());
        prop_assert_eq!(quant[i].to_bits(), want.to_bits());
        prop_assert_eq!(auto[i].to_bits(), want.to_bits());
    }
    Ok(())
}

/// Deterministic Fisher–Yates permutation from an LCG stream, so the
/// permutation test does not depend on any RNG crate.
fn pseudo_perm(n: usize, mut state: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        perm.swap(i, (state >> 33) as usize % (i + 1));
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_predictions_stay_within_target_range((rows, y) in dataset(40, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &rows {
            let p = fit.predict_row(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_predictions_stay_within_target_range((rows, y) in dataset(30, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let model = RandomForestConfig { n_estimators: 8, ..Default::default() }
            .fit(&x, &y, 1).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &rows {
            let p = model.predict_row(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn tree_mdi_is_a_distribution((rows, y) in dataset(40, 4)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 2).unwrap();
        let sum: f64 = fit.feature_importances.iter().sum();
        prop_assert!(fit.feature_importances.iter().all(|v| *v >= 0.0));
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn shap_local_accuracy_single_tree((rows, y) in dataset(30, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig { max_depth: Some(4), ..Default::default() }
            .fit(&x, &y, 3).unwrap();
        for row in rows.iter().take(8) {
            let explanation = fit.shap_row(row);
            let reconstructed = explanation.reconstructed();
            let predicted = fit.predict_row(row);
            prop_assert!(
                (reconstructed - predicted).abs() < 1e-6 * (1.0 + predicted.abs()),
                "Σφ + base = {reconstructed} but f(x) = {predicted}"
            );
        }
    }

    #[test]
    fn shap_local_accuracy_gbdt((rows, y) in dataset(25, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let model = GbdtConfig { n_estimators: 6, max_depth: 3, ..Default::default() }
            .fit(&x, &y, 4).unwrap();
        for row in rows.iter().take(5) {
            let explanation = model.shap_row(row);
            let predicted = model.predict_row(row);
            prop_assert!(
                (explanation.reconstructed() - predicted).abs() < 1e-6 * (1.0 + predicted.abs())
            );
        }
    }

    #[test]
    fn gbdt_training_error_decreases_with_rounds((rows, y) in dataset(40, 2)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let short = GbdtConfig { n_estimators: 1, ..Default::default() }.fit(&x, &y, 5).unwrap();
        let long = GbdtConfig { n_estimators: 20, ..Default::default() }.fit(&x, &y, 5).unwrap();
        let e_short = mse(&y, &short.predict(&x));
        let e_long = mse(&y, &long.predict(&x));
        prop_assert!(e_long <= e_short + 1e-9, "{e_long} > {e_short}");
    }

    #[test]
    fn metrics_identities(y in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        // Perfect predictions: all error metrics zero, R² = 1 (if varied).
        prop_assert_eq!(mse(&y, &y), 0.0);
        prop_assert_eq!(mae(&y, &y), 0.0);
        prop_assert_eq!(rmse(&y, &y), 0.0);
        let spread = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1e-9 {
            prop_assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_dominates_squared_mae(
        y in prop::collection::vec(-100.0f64..100.0, 2..30),
        p in prop::collection::vec(-100.0f64..100.0, 2..30),
    ) {
        let n = y.len().min(p.len());
        let (y, p) = (&y[..n], &p[..n]);
        // Jensen: mean of squares ≥ square of mean of |errors|.
        prop_assert!(mse(y, p) + 1e-9 >= mae(y, p).powi(2));
    }

    #[test]
    fn kfold_partitions_exactly(n in 4usize..200, k in 2usize..6) {
        prop_assume!(n >= k);
        let folds = kfold_indices(n, k).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in test {
                prop_assert!(!seen[i], "row {i} in two test folds");
                seen[i] = true;
                prop_assert!(!train.contains(&i));
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn max_features_resolve_in_range(n in 1usize..500, c in 0usize..600, f in 0.01f64..1.0) {
        for mf in [
            MaxFeatures::All,
            MaxFeatures::Sqrt,
            MaxFeatures::Log2,
            MaxFeatures::Count(c),
            MaxFeatures::Fraction(f),
        ] {
            let k = mf.resolve(n);
            prop_assert!(k >= 1 && k <= n, "{mf:?} on {n} gave {k}");
        }
    }

    #[test]
    fn binned_codes_round_trip((rows, _y) in dataset(40, 3), bins in 2usize..64) {
        let x = Matrix::from_rows(&rows).unwrap();
        let binned = BinnedMatrix::from_matrix(&x, bins).unwrap();
        prop_assert_eq!(binned.n_rows(), x.n_rows());
        prop_assert_eq!(binned.n_features(), x.n_features());
        for f in 0..x.n_features() {
            let edges = binned.bin_edges(f);
            prop_assert!(binned.n_bins(f) <= bins);
            prop_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges not increasing");
            for r in 0..x.n_rows() {
                // A code is the unique bin whose half-open interval
                // (edges[code-1], edges[code]] holds the raw value, so
                // value -> code -> edge interval -> code is stable.
                let (v, code) = (x.get(r, f), binned.code(r, f));
                prop_assert!(code < binned.n_bins(f));
                prop_assert!(v <= edges[code], "value above its bin edge");
                prop_assert!(code == 0 || v > edges[code - 1], "value below its bin");
            }
        }
    }

    #[test]
    fn histogram_tree_equals_exact_when_distinct_fits((rows, y) in integer_dataset(40, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let exact = TreeConfig { split_method: SplitMethod::Exact, ..Default::default() }
            .fit(&x, &y, 7).unwrap();
        let hist = TreeConfig {
            split_method: SplitMethod::Histogram { max_bins: 256 },
            ..Default::default()
        }
        .fit(&x, &y, 7).unwrap();
        prop_assert_eq!(exact, hist);
    }

    #[test]
    fn forest_histogram_predicts_identically_on_integer_data((rows, y) in integer_dataset(30, 3)) {
        let exact_cfg = RandomForestConfig {
            n_estimators: 6,
            split_method: SplitMethod::Exact,
            ..Default::default()
        };
        let hist_cfg = RandomForestConfig {
            split_method: SplitMethod::Histogram { max_bins: 256 },
            ..exact_cfg.clone()
        };
        let x = Matrix::from_rows(&rows).unwrap();
        let exact = exact_cfg.fit(&x, &y, 11).unwrap();
        let hist = hist_cfg.fit(&x, &y, 11).unwrap();
        for row in &rows {
            // Bit-identical trees mean bit-identical predictions.
            prop_assert_eq!(exact.predict_row(row), hist.predict_row(row));
        }
    }

    #[test]
    fn permuted_codes_match_fresh_binning(
        (rows, _y) in dataset(30, 3),
        bins in 2usize..32,
        perm_seed in 0u64..1_000_000,
    ) {
        let x = Matrix::from_rows(&rows).unwrap();
        let perm = pseudo_perm(x.n_rows(), perm_seed);
        // Reuse path: permute one feature's codes in place.
        let mut reused = BinnedMatrix::from_matrix(&x, bins).unwrap();
        reused.permute_column(1, &perm);
        // Reference path: permute the raw column, then bin from scratch.
        let mut shuffled = x.clone();
        for (r, &src) in perm.iter().enumerate() {
            shuffled.set(r, 1, x.get(src, 1));
        }
        let fresh = BinnedMatrix::from_matrix(&shuffled, bins).unwrap();
        prop_assert_eq!(reused, fresh);
    }

    #[test]
    fn compiled_forest_is_bit_identical_across_split_methods((rows, y) in dataset(30, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let probes = parity_probes(&rows);
        for split_method in [SplitMethod::Exact, SplitMethod::Histogram { max_bins: 32 }] {
            let model = RandomForestConfig {
                n_estimators: 5,
                max_depth: Some(5),
                max_features: MaxFeatures::Sqrt,
                split_method,
                ..Default::default()
            }
            .fit(&x, &y, 13)
            .unwrap();
            let compiled = CompiledEnsemble::from_forest(&model);
            prop_assert_eq!(compiled.n_trees(), 5);
            assert_compiled_parity(&model, &compiled, &probes)?;
        }
    }

    #[test]
    fn compiled_gbdt_is_bit_identical_across_split_methods((rows, y) in dataset(30, 3)) {
        let x = Matrix::from_rows(&rows).unwrap();
        let probes = parity_probes(&rows);
        for split_method in [SplitMethod::Exact, SplitMethod::Histogram { max_bins: 32 }] {
            let model = GbdtConfig {
                n_estimators: 7,
                max_depth: 3,
                split_method,
                ..Default::default()
            }
            .fit(&x, &y, 17)
            .unwrap();
            let compiled = CompiledEnsemble::from_gbdt(&model);
            assert_compiled_parity(&model, &compiled, &probes)?;
        }
    }

    #[test]
    fn constant_features_get_zero_importance((rows, y) in dataset(30, 2)) {
        // Append a constant column: it can never split usefully.
        let augmented: Vec<Vec<f64>> = rows.iter().map(|r| {
            let mut r = r.clone();
            r.push(7.5);
            r
        }).collect();
        let x = Matrix::from_rows(&augmented).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 9).unwrap();
        prop_assert_eq!(fit.feature_importances[2], 0.0);
    }
}
