//! The matrix run: expand, resume, schedule, evaluate, report.
//!
//! [`run_matrix`] is the crate's entry point. It simulates the synth
//! market, builds every family index, expands the window/horizon
//! cross-product, subtracts the cells an earlier (killed) run already
//! completed, executes the remainder on the work-stealing scheduler
//! with shared prep, streams each finished cell through the store, and
//! renders the byte-deterministic `matrix.json`.

use std::sync::Arc;
use std::time::Instant;

use c100_core::dataset::{assemble, MasterDataset};
use c100_core::index::IndexFamilySpec;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::tree::SplitMethod;
use c100_ml::Regressor;
use c100_obs::metrics::MetricsRegistry;
use c100_obs::ring::FlightRecorder;
use c100_obs::trace::Tracer;
use c100_store::MatrixStore;
use c100_synth::{generate, MarketData};

use crate::prep::{PrepCache, WindowPrep, PREP_MAX_BINS};
use crate::report::{CellResult, CellStatus, MatrixReport};
use crate::sched::{run_tasks, SchedStats};
use crate::spec::{
    expand_cells, expand_windows, CellPlan, MatrixConfig, SplitRule, MIN_TEST_ROWS, MIN_TRAIN_ROWS,
    TRAIN_FRACTION,
};
use crate::Result;

/// Observability sinks for a matrix run; all optional, all borrowed.
#[derive(Clone, Copy, Default)]
pub struct MatrixObs<'a> {
    /// Span sink (`matrix.plan`, `matrix.prep`, `matrix.cell`, …).
    pub tracer: Option<&'a Tracer>,
    /// Counter/histogram sink (`matrix.cells_completed`, …).
    pub metrics: Option<&'a MetricsRegistry>,
    /// Failure sink (`matrix_cell_failed` entries).
    pub flight: Option<&'a FlightRecorder>,
}

impl<'a> MatrixObs<'a> {
    /// No observability at all (tests, benches measuring pure work).
    pub fn disabled() -> MatrixObs<'a> {
        MatrixObs::default()
    }

    fn count(&self, name: &str, delta: u64) {
        if let Some(m) = self.metrics {
            m.add(name, delta);
        }
    }

    fn observe(&self, name: &str, started: Instant) {
        if let Some(m) = self.metrics {
            m.observe_micros(name, started.elapsed().as_micros() as u64);
        }
    }
}

/// What a matrix run produced.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// The assembled report (render with [`MatrixReport::render`]).
    pub report: MatrixReport,
    /// Cells recovered from the store instead of recomputed.
    pub resumed: u64,
    /// Cells computed this run.
    pub computed: u64,
    /// Scheduler counters for the computed portion.
    pub sched: SchedStats,
    /// Dataset preps built / served from cache this run.
    pub prep_builds: u64,
    /// Cache hits (cells that reused another cell's prep).
    pub prep_hits: u64,
}

/// Runs the full matrix on `threads` workers, streaming completed cells
/// into the store at `store_root` and resuming from whatever a previous
/// run with the same configuration left there (`fresh` discards it).
pub fn run_matrix(
    config: &MatrixConfig,
    threads: usize,
    store_root: impl Into<std::path::PathBuf>,
    fresh: bool,
    obs: MatrixObs<'_>,
) -> Result<MatrixOutcome> {
    config.validate()?;
    let fingerprint = config.fingerprint();
    let (store, completed) = MatrixStore::open(store_root, &fingerprint, fresh)?;

    // Plan: simulate the market, build the family indices, expand the
    // cross-product.
    let plan_span = obs.tracer.map(|t| t.span("matrix", "matrix.plan"));
    let data = generate(&config.synth);
    let master = assemble(&data)?;
    let families: Vec<(String, Vec<f64>)> = config
        .families
        .iter()
        .map(|f: &IndexFamilySpec| (f.id(), f.build(&data.universe).into_values()))
        .collect();
    let windows = expand_windows(config, &data.latents)?;
    let cells = expand_cells(config, &windows);
    drop(plan_span);
    obs.count("matrix.cells_total", cells.len() as u64);

    // Resume: completed cells (validated against the fingerprint by the
    // store) are emitted verbatim; only the remainder is scheduled.
    let planned_ids: std::collections::HashSet<String> = cells.iter().map(|c| c.id()).collect();
    let done: std::collections::HashSet<String> = completed
        .iter()
        .filter(|c| planned_ids.contains(&c.cell_id))
        .map(|c| c.cell_id.clone())
        .collect();
    let todo: Vec<&CellPlan> = cells.iter().filter(|c| !done.contains(&c.id())).collect();
    let resumed = done.len() as u64;
    obs.count("matrix.cells_resumed", resumed);

    let cache = PrepCache::new(&master, &families);
    let computed = todo.len() as u64;
    let store_ref = &store;
    let (results, sched) = run_tasks(todo, threads, |plan| {
        let started = Instant::now();
        let cell_span = obs.tracer.map(|t| t.span(&plan.family_id, "matrix.cell"));
        let result = evaluate_cell(config, &cache, plan, obs);
        drop(cell_span);
        obs.observe("matrix.cell_micros", started);
        match result.status {
            CellStatus::Ok => obs.count("matrix.cells_completed", 1),
            CellStatus::Failed => {
                obs.count("matrix.cells_failed", 1);
                if let Some(flight) = obs.flight {
                    flight.record(
                        "matrix_cell_failed",
                        &format!("{}: {}", result.cell_id, result.error),
                        Some(started.elapsed().as_micros() as u64),
                    );
                }
            }
        }
        // Stream the cell into the store the moment it completes — this
        // is what a SIGKILL'd run resumes from.
        let payload = result.encode();
        store_ref
            .save_cell(&result.cell_id, &payload)
            .map(|()| (result.cell_id, payload))
    });
    obs.count("matrix.prep_builds", cache.builds());
    obs.count("matrix.prep_hits", cache.hits());
    obs.count("matrix.steals", sched.steals);
    let fresh_records: Vec<(String, String)> =
        results.into_iter().collect::<std::result::Result<_, _>>()?;

    let report_span = obs.tracer.map(|t| t.span("matrix", "matrix.report"));
    let mut records: Vec<(String, String)> = completed
        .into_iter()
        .filter(|c| planned_ids.contains(&c.cell_id))
        .map(|c| (c.cell_id, c.payload))
        .collect();
    records.extend(fresh_records);
    let report = MatrixReport::assemble(fingerprint, config.canonical_description(), records)?;
    drop(report_span);

    Ok(MatrixOutcome {
        report,
        resumed,
        computed,
        sched,
        prep_builds: cache.builds(),
        prep_hits: cache.hits(),
    })
}

/// The forest every cell fits: small, histogram-mode at the shared
/// binning width, fully deterministic given its seed.
fn cell_gbdt() -> GbdtConfig {
    GbdtConfig {
        n_estimators: 30,
        learning_rate: 0.1,
        max_depth: 3,
        subsample: 1.0,
        colsample_bytree: 1.0,
        split_method: SplitMethod::Histogram {
            max_bins: PREP_MAX_BINS,
        },
        ..GbdtConfig::default()
    }
}

/// Evaluates one cell against its (cached) window prep. Never panics on
/// bad geometry — every failure path produces a `failed` cell.
fn evaluate_cell(
    config: &MatrixConfig,
    cache: &PrepCache<'_>,
    plan: &CellPlan,
    obs: MatrixObs<'_>,
) -> CellResult {
    let cell_id = plan.id();
    let kind = plan.window.kind.label();
    let fail = |error: String| {
        CellResult::failed(
            &cell_id,
            &plan.family_id,
            &plan.window.id,
            kind,
            plan.horizon as u64,
            error,
        )
    };

    let prep_started = Instant::now();
    let prep_span = obs.tracer.map(|t| t.span(&plan.family_id, "matrix.prep"));
    let prep = cache.get(
        plan.family_idx,
        plan.window.prep_start,
        plan.window.prep_end,
    );
    drop(prep_span);
    obs.observe("matrix.prep_micros", prep_started);
    let prep: Arc<WindowPrep> = match prep {
        Ok(p) => p,
        Err(e) => return fail(e),
    };

    let len = prep.len();
    let horizon = plan.horizon;
    // Rows usable as (features[t], index[t + horizon]) pairs, capped to
    // the window's evaluation boundary.
    let rel_eval_end = plan.window.eval_end - plan.window.prep_start;
    let usable = rel_eval_end.min(len.saturating_sub(horizon));
    let split = match plan.window.split {
        SplitRule::Fraction => (usable as f64 * TRAIN_FRACTION).round() as usize,
        SplitRule::TrainEndsAt(row) => row.saturating_sub(plan.window.prep_start).min(usable),
    };
    if split < MIN_TRAIN_ROWS {
        return fail(format!(
            "window {} has {split} training rows at horizon {horizon} (need {MIN_TRAIN_ROWS})",
            plan.window.id
        ));
    }
    let test_rows = usable - split;
    if test_rows < MIN_TEST_ROWS {
        return fail(format!(
            "window {} has {test_rows} test rows at horizon {horizon} (need {MIN_TEST_ROWS})",
            plan.window.id
        ));
    }

    // Train on the window's prefix: shared matrices cut at the split.
    let y_train: Vec<f64> = (0..split).map(|t| prep.index[t + horizon]).collect();
    let x_train = match prep.x.prefix_rows(split) {
        Ok(m) => m,
        Err(e) => return fail(format!("train cut: {e}")),
    };
    let binned_train = match prep.binned.prefix_rows(split) {
        Ok(b) => b,
        Err(e) => return fail(format!("train binning cut: {e}")),
    };
    let seed = config.cell_seed(&cell_id);
    let trace = match obs.tracer {
        Some(t) => t.ctx(),
        None => c100_obs::trace::TraceCtx::disabled(),
    };
    let model = match cell_gbdt().fit_binned_traced(&x_train, &y_train, &binned_train, seed, trace)
    {
        Ok(m) => m,
        Err(e) => return fail(format!("fit: {e}")),
    };

    // Held-out rows [split, usable): model MSE vs the persistence
    // baseline (predict today's index level for day t + horizon).
    let mut se = 0.0;
    let mut baseline_se = 0.0;
    for t in split..usable {
        let actual = prep.index[t + horizon];
        let predicted = model.predict_row(prep.x.row(t));
        se += (predicted - actual).powi(2);
        baseline_se += (prep.index[t] - actual).powi(2);
    }
    let n = test_rows as f64;

    CellResult {
        cell_id,
        family: plan.family_id.clone(),
        window: plan.window.id.clone(),
        window_kind: kind.to_string(),
        horizon: horizon as u64,
        status: CellStatus::Ok,
        train_rows: split as u64,
        test_rows: test_rows as u64,
        mse: se / n,
        baseline_mse: baseline_se / n,
        error: String::new(),
    }
}

/// Exposed for benches: evaluates `plans` with **no** prep sharing —
/// the naive baseline `matrix_throughput` compares against. Each cell
/// does what the pre-matrix [`c100_core::pipeline::run_scenario`] path
/// does for one scenario: assemble the master dataset, build its
/// family index and prep its own window slice from scratch.
pub fn evaluate_cells_unshared(
    config: &MatrixConfig,
    data: &MarketData,
    plans: &[CellPlan],
    threads: usize,
) -> Vec<CellResult> {
    let (results, _) = run_tasks(plans.iter().collect(), threads, |plan| {
        let master = assemble(data).expect("same data the shared path assembled");
        let family = &config.families[plan.family_idx];
        let families = vec![(family.id(), family.build(&data.universe).into_values())];
        let cache = PrepCache::new(&master, &families);
        let remapped = CellPlan {
            family_idx: 0,
            ..plan.clone()
        };
        evaluate_cell(config, &cache, &remapped, MatrixObs::disabled())
    });
    results
}

/// Exposed for benches and tests: evaluates `plans` with one shared
/// cache, as the real run does, returning the results and cache stats.
pub fn evaluate_cells_shared(
    config: &MatrixConfig,
    master: &MasterDataset,
    families: &[(String, Vec<f64>)],
    plans: &[CellPlan],
    threads: usize,
) -> (Vec<CellResult>, u64, u64) {
    let cache = PrepCache::new(master, families);
    let (results, _) = run_tasks(plans.iter().collect(), threads, |plan| {
        evaluate_cell(config, &cache, plan, MatrixObs::disabled())
    });
    (results, cache.builds(), cache.hits())
}
