//! Permutation feature importance (PFI).
//!
//! PFI measures how much a model's MSE degrades when one feature column is
//! shuffled, breaking its relationship with the target while preserving its
//! marginal distribution. Unlike MDI it is computed on predictions, so it
//! is immune to the training-time split-cardinality bias the paper calls
//! out. The paper extracts PFI "using MSE as the optimization measure" for
//! both RF and XGB inside the FRA loop.
//!
//! This path is bin-free: fitted trees carry raw thresholds, so permuting
//! raw columns and predicting needs no [`crate::data::BinnedMatrix`].
//! Workloads that instead *refit* on permuted columns (target shuffling,
//! permutation-based retraining baselines) should permute bin codes via
//! [`crate::data::BinnedMatrix::permute_column`] rather than re-binning:
//! a permuted column has the same value set, so the result is identical
//! to fresh binning at a fraction of the cost.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::data::Matrix;
use crate::metrics::mse;
use crate::tree::permutation;
use crate::{MlError, Regressor, Result};

/// Configuration for a permutation-importance run.
#[derive(Debug, Clone, Copy)]
pub struct PermutationConfig {
    /// Number of independent shuffles averaged per feature.
    pub n_repeats: usize,
    /// Seed for the shuffle streams.
    pub seed: u64,
}

impl Default for PermutationConfig {
    fn default() -> Self {
        PermutationConfig {
            n_repeats: 5,
            seed: 0,
        }
    }
}

/// Per-feature permutation importance: mean and standard deviation of the
/// MSE increase across repeats.
#[derive(Debug, Clone)]
pub struct PermutationImportance {
    /// Mean MSE increase per feature (can be slightly negative for pure
    /// noise features).
    pub importances_mean: Vec<f64>,
    /// Standard deviation of the increase across repeats.
    pub importances_std: Vec<f64>,
    /// The unpermuted baseline MSE.
    pub baseline_mse: f64,
}

/// Computes permutation importance of `model` on `(x, y)`.
///
/// Features are processed in parallel; each `(feature, repeat)` pair draws
/// its shuffle from an independent deterministic stream, so results do not
/// depend on thread scheduling.
pub fn permutation_importance<M>(
    model: &M,
    x: &Matrix,
    y: &[f64],
    config: &PermutationConfig,
) -> Result<PermutationImportance>
where
    M: Regressor + Sync,
{
    if x.n_rows() != y.len() {
        return Err(MlError::BadInput(format!(
            "{} rows but {} targets",
            x.n_rows(),
            y.len()
        )));
    }
    if config.n_repeats == 0 {
        return Err(MlError::BadConfig("n_repeats must be >= 1".into()));
    }
    let baseline = mse(y, &model.predict(x));
    let n_features = x.n_features();

    let per_feature: Vec<(f64, f64)> = (0..n_features)
        .into_par_iter()
        .map(|feature| {
            let mut deltas = Vec::with_capacity(config.n_repeats);
            let mut shuffled = x.clone();
            let mut column = Vec::new();
            x.gather_column(feature, &mut column);
            for repeat in 0..config.n_repeats {
                // Stream id mixes feature and repeat so shuffles are
                // independent of iteration order.
                let stream = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((feature as u64) << 20)
                    .wrapping_add(repeat as u64);
                let mut rng = StdRng::seed_from_u64(stream);
                let perm = permutation(column.len(), &mut rng);
                for (row, &src) in perm.iter().enumerate() {
                    shuffled.set(row, feature, column[src]);
                }
                let permuted_mse = mse(y, &model.predict(&shuffled));
                deltas.push(permuted_mse - baseline);
            }
            // Restore is unnecessary: `shuffled` is a per-feature clone.
            let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
            let var = deltas.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / deltas.len() as f64;
            (mean, var.sqrt())
        })
        .collect();

    Ok(PermutationImportance {
        importances_mean: per_feature.iter().map(|p| p.0).collect(),
        importances_std: per_feature.iter().map(|p| p.1).collect(),
        baseline_mse: baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;
    use rand::Rng;

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let signal = rng.gen::<f64>() * 10.0;
            let noise_feature = rng.gen::<f64>();
            rows.push(vec![signal, noise_feature]);
            y.push(3.0 * signal);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn signal_feature_dominates_noise() {
        let (x, y) = linear_data(300, 1);
        let model = RandomForestConfig {
            n_estimators: 30,
            ..Default::default()
        }
        .fit(&x, &y, 2)
        .unwrap();
        let pfi = permutation_importance(&model, &x, &y, &PermutationConfig::default()).unwrap();
        assert!(pfi.importances_mean[0] > 10.0 * pfi.importances_mean[1].abs().max(1e-9));
        assert!(pfi.baseline_mse >= 0.0);
    }

    #[test]
    fn noise_feature_importance_is_near_zero() {
        let (x, y) = linear_data(300, 3);
        let model = RandomForestConfig {
            n_estimators: 30,
            ..Default::default()
        }
        .fit(&x, &y, 4)
        .unwrap();
        let pfi = permutation_importance(&model, &x, &y, &PermutationConfig::default()).unwrap();
        // Compare the noise feature's PFI against the target's scale.
        let target_var = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m).powi(2)).sum::<f64>() / y.len() as f64
        };
        assert!(pfi.importances_mean[1].abs() < 0.05 * target_var);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = linear_data(100, 5);
        let model = RandomForestConfig {
            n_estimators: 10,
            ..Default::default()
        }
        .fit(&x, &y, 6)
        .unwrap();
        let cfg = PermutationConfig {
            n_repeats: 3,
            seed: 9,
        };
        let a = permutation_importance(&model, &x, &y, &cfg).unwrap();
        let b = permutation_importance(&model, &x, &y, &cfg).unwrap();
        assert_eq!(a.importances_mean, b.importances_mean);
        assert_eq!(a.importances_std, b.importances_std);
    }

    #[test]
    fn rejects_bad_input() {
        let (x, y) = linear_data(50, 7);
        let model = RandomForestConfig {
            n_estimators: 5,
            ..Default::default()
        }
        .fit(&x, &y, 8)
        .unwrap();
        assert!(
            permutation_importance(&model, &x, &y[..10], &PermutationConfig::default()).is_err()
        );
        let zero_repeats = PermutationConfig {
            n_repeats: 0,
            seed: 0,
        };
        assert!(permutation_importance(&model, &x, &y, &zero_repeats).is_err());
    }

    #[test]
    fn std_is_zero_for_single_repeat() {
        let (x, y) = linear_data(60, 11);
        let model = RandomForestConfig {
            n_estimators: 5,
            ..Default::default()
        }
        .fit(&x, &y, 12)
        .unwrap();
        let cfg = PermutationConfig {
            n_repeats: 1,
            seed: 0,
        };
        let pfi = permutation_importance(&model, &x, &y, &cfg).unwrap();
        assert!(pfi.importances_std.iter().all(|&s| s == 0.0));
    }
}
