//! The driver loop behind `repro stream`: tick → indicators → monitors
//! → (maybe) rollover, with `stream.*` metrics and spans throughout.
//!
//! Per tick, in order:
//!
//! 1. pull the next [`BtcTick`](c100_synth::btc::BtcTick) from the
//!    synth source and fold it into the incremental indicator state;
//! 2. append the feature row to the [`AppendFrame`] history;
//! 3. score the matured forecast (made `horizon` ticks ago) into the
//!    decay monitor;
//! 4. forecast the current tick locally and — when `--serve` is
//!    attached — `POST /predict` against the live server, counting any
//!    failure (the zero-downtime property under hot reload is exactly
//!    "this counter stays 0");
//! 5. decide whether to roll: the initial fit once enough matured
//!    history exists, then scheduled cadence / drift / decay, all
//!    rate-limited by a minimum gap between rollovers.
//!
//! After the loop the accumulated complete feature rows are exported as
//! `features_stream_<scenario>.csv` next to the artifacts, giving
//! `repro predict` and CI's parity check a shared input.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use c100_core::pipeline::ScenarioSpec;
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::Regressor;
use c100_obs::json::{write_escaped, write_float};
use c100_obs::{
    CounterHandle, FlightRecorder, HistogramHandle, MetricsRegistry, RunObserver, Tracer,
};
use c100_store::ArtifactStore;
use c100_synth::SynthConfig;
use c100_timeseries::csv::write_frame_to_path;
use c100_timeseries::AppendFrame;

use crate::indicators::{StreamIndicators, FEATURE_NAMES};
use crate::monitor::DecayMonitor;
use crate::rollover::{RolloverController, RolloverTrigger};
use crate::source::SynthTickSource;
use crate::{client, Result, StreamError};

/// Everything `repro stream` can turn with a flag.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Scenario the online models are stamped with; its window is the
    /// forecast horizon in ticks.
    pub scenario: ScenarioSpec,
    /// Seed for the synth market and every fit.
    pub seed: u64,
    /// Ticks to stream (clamped to the synth series length).
    pub ticks: usize,
    /// Scheduled refit cadence in ticks since the last rollover.
    pub refit_every: usize,
    /// Matured training rows required before the initial fit.
    pub min_train_rows: usize,
    /// Minimum ticks between rollovers; drift/decay triggers inside
    /// the gap are ignored so a persistently shifted regime cannot
    /// refit on every tick.
    pub min_refit_gap: usize,
    /// Drift trigger: worst per-feature |z| beyond this fires a refit.
    pub drift_z: f64,
    /// Decay trigger: rolling MSE beyond `ratio ×` fit-time MSE.
    pub decay_ratio: f64,
    /// Matured forecasts in the rolling-MSE window.
    pub decay_window: usize,
    /// SMA exact-recompute resync cadence (ticks).
    pub resync_every: usize,
    /// Artifact generations kept per family (0 disables pruning).
    pub retain: usize,
    /// Hyper-parameters of every online (re)fit. Deliberately small:
    /// warm starts stack `n_estimators` new rounds per rollover.
    pub gbdt: GbdtConfig,
    /// Artifact store directory (created if missing).
    pub store_dir: PathBuf,
    /// Live `c100-serve` address (`host:port`) to `POST /predict` per
    /// tick and `POST /reload` per rollover.
    pub serve_addr: Option<String>,
}

impl StreamConfig {
    /// Defaults tuned so a few hundred ticks exercise the whole loop:
    /// initial fit around tick 65, a scheduled refit every 120 ticks.
    pub fn new(store_dir: impl Into<PathBuf>) -> StreamConfig {
        StreamConfig {
            scenario: ScenarioSpec {
                period: Period::Y2019,
                window: 7,
            },
            seed: 42,
            ticks: 400,
            refit_every: 120,
            min_train_rows: 30,
            min_refit_gap: 20,
            drift_z: 8.0,
            decay_ratio: 4.0,
            decay_window: 30,
            resync_every: 64,
            retain: 8,
            gbdt: GbdtConfig {
                n_estimators: 25,
                learning_rate: 0.1,
                max_depth: 3,
                ..Default::default()
            },
            store_dir: store_dir.into(),
            serve_addr: None,
        }
    }

    fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("ticks", self.ticks),
            ("refit_every", self.refit_every),
            ("decay_window", self.decay_window),
            ("resync_every", self.resync_every),
        ] {
            if v == 0 {
                return Err(StreamError::Config(format!("{name} must be >= 1")));
            }
        }
        if self.min_train_rows < 2 {
            return Err(StreamError::Config("min_train_rows must be >= 2".into()));
        }
        Ok(())
    }
}

/// Machine-readable summary of one streaming run (CI's smoke gate
/// parses the JSON form).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Scenario id the run was stamped with.
    pub scenario: String,
    /// Ticks actually streamed.
    pub ticks: usize,
    /// Total rollovers (the initial cold fit included).
    pub rollovers: usize,
    /// Rollovers that warm-started from the previous artifact.
    pub warm_rollovers: usize,
    /// Rollovers fired by the scheduled cadence.
    pub scheduled_triggers: usize,
    /// Rollovers fired by the drift monitor.
    pub drift_triggers: usize,
    /// Rollovers fired by the decay monitor.
    pub decay_triggers: usize,
    /// `POST /predict` calls made against the live server.
    pub predict_requests: u64,
    /// Live predicts that failed (non-2xx or transport error).
    pub predict_failures: u64,
    /// Content address of the final deployed artifact.
    pub final_artifact: Option<String>,
    /// Training MSE of the final deployed model.
    pub final_train_mse: Option<f64>,
    /// Wall time of the tick loop.
    pub elapsed_secs: f64,
    /// Ticks per second over the loop.
    pub ticks_per_sec: f64,
    /// Where the complete feature rows were exported.
    pub features_csv: Option<PathBuf>,
}

impl StreamReport {
    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"scenario\":");
        write_escaped(&mut out, &self.scenario);
        out.push_str(&format!(
            ",\"ticks\":{},\"rollovers\":{},\"warm_rollovers\":{},\"scheduled_triggers\":{},\
             \"drift_triggers\":{},\"decay_triggers\":{},\"predict_requests\":{},\
             \"predict_failures\":{}",
            self.ticks,
            self.rollovers,
            self.warm_rollovers,
            self.scheduled_triggers,
            self.drift_triggers,
            self.decay_triggers,
            self.predict_requests,
            self.predict_failures
        ));
        out.push_str(",\"final_artifact\":");
        match &self.final_artifact {
            Some(id) => write_escaped(&mut out, id),
            None => out.push_str("null"),
        }
        out.push_str(",\"final_train_mse\":");
        match self.final_train_mse {
            Some(mse) => write_float(&mut out, mse),
            None => out.push_str("null"),
        }
        out.push_str(",\"elapsed_secs\":");
        write_float(&mut out, self.elapsed_secs);
        out.push_str(",\"ticks_per_sec\":");
        write_float(&mut out, self.ticks_per_sec);
        out.push_str(",\"features_csv\":");
        match &self.features_csv {
            Some(path) => write_escaped(&mut out, &path.display().to_string()),
            None => out.push_str("null"),
        }
        out.push_str("}\n");
        out
    }
}

/// Handles the tick loop records through — resolved once up front so
/// the per-tick path never touches the registry's by-name maps.
struct StreamMetrics {
    ticks: CounterHandle,
    forecasts: CounterHandle,
    serve_predicts: CounterHandle,
    serve_predict_failures: CounterHandle,
    /// `stream.tick_to_forecast_micros`: tick ingest → local forecast.
    tick_to_forecast: HistogramHandle,
    /// `stream.serve_rtt_micros`: `POST /predict` round-trip.
    serve_rtt: HistogramHandle,
}

impl StreamMetrics {
    fn preregister(registry: &MetricsRegistry) -> StreamMetrics {
        StreamMetrics {
            ticks: registry.counter("stream.ticks_total"),
            forecasts: registry.counter("stream.forecasts_total"),
            serve_predicts: registry.counter("stream.serve_predicts_total"),
            serve_predict_failures: registry.counter("stream.serve_predict_failures_total"),
            tick_to_forecast: registry.histogram("stream.tick_to_forecast_micros"),
            serve_rtt: registry.histogram("stream.serve_rtt_micros"),
        }
    }
}

/// Streams synth ticks through the incremental-indicator / monitor /
/// rollover loop. `registry` receives `stream.*` metrics and the
/// rollover events; `tracer` (optional) records per-tick spans;
/// `flight` (optional) gets a record per rollover and per failed live
/// predict, so a post-mortem dump shows what the loop last did.
pub fn run_stream(
    config: &StreamConfig,
    registry: &Arc<MetricsRegistry>,
    tracer: Option<&Arc<Tracer>>,
    flight: Option<&FlightRecorder>,
) -> Result<StreamReport> {
    config.validate()?;
    let scenario = config.scenario.id();
    let horizon = config.scenario.window;

    let mut source = SynthTickSource::new(&SynthConfig::small(config.seed));
    let ticks = config.ticks.min(source.len());

    let mut store = ArtifactStore::open(&config.store_dir)?
        .with_observer(registry.clone() as Arc<dyn RunObserver>);
    if config.retain > 0 {
        store = store.with_retention(config.retain);
    }
    let mut controller = RolloverController::new(
        config.scenario,
        Profile::fast().with_seed(config.seed),
        config.gbdt.clone(),
        store,
    )
    .with_observer(registry.clone() as Arc<dyn RunObserver>)
    .with_drift_threshold(config.drift_z);
    if let Some(addr) = &config.serve_addr {
        controller = controller.with_reload_addr(addr);
    }
    if let Some(tracer) = tracer {
        controller = controller.with_tracer(tracer.clone());
    }

    let metrics = StreamMetrics::preregister(registry);
    let mut indicators = StreamIndicators::new(config.resync_every);
    let mut history = AppendFrame::new(&FEATURE_NAMES);
    let mut closes: Vec<f64> = Vec::with_capacity(ticks);
    let mut decay: Option<DecayMonitor> = None;
    let mut first_complete: Option<usize> = None;
    let mut last_roll_tick = 0usize;

    let mut warm_rollovers = 0usize;
    let mut scheduled_triggers = 0usize;
    let mut drift_triggers = 0usize;
    let mut decay_triggers = 0usize;
    let mut predict_requests = 0u64;
    let mut predict_failures = 0u64;
    let mut final_train_mse = None;

    let started = Instant::now();
    for t in 0..ticks {
        let _tick_span = tracer.map(|tr| tr.span(&scenario, "stream.tick"));
        let tick_started = Instant::now();
        let tick = source
            .next_tick()
            .expect("tick count was clamped to the source length");
        let features = indicators.update(tick.high, tick.low, tick.close, tick.volume);
        history.push_row(tick.date, &features)?;
        closes.push(tick.close);
        metrics.ticks.inc();

        let complete = features.iter().all(|v| v.is_finite());
        if first_complete.is_none() && complete {
            first_complete = Some(t);
        }

        // Score the forecast that matured this tick.
        if let Some(decay) = &mut decay {
            if t >= horizon {
                let realized = closes[t] / closes[t - horizon] - 1.0;
                decay.observe_realized(t - horizon, realized);
            }
        }

        // Forecast the current tick, locally and against the live
        // server. Requests keep flowing while rollovers happen — the
        // failure counter staying at zero is the zero-downtime check.
        if complete {
            if let Some(active) = controller.active() {
                let forecast = {
                    let _span = tracer.map(|tr| tr.span(&scenario, "stream.predict"));
                    active.model.predict_row(&features)
                };
                metrics.forecasts.inc();
                // Ingest → forecast-in-hand, the latency a downstream
                // consumer of this loop's signal actually experiences.
                metrics.tick_to_forecast.observe(tick_started.elapsed());
                if let Some(decay) = &mut decay {
                    decay.predicted(t, forecast);
                }
                if let Some(addr) = &config.serve_addr {
                    predict_requests += 1;
                    let rtt_started = Instant::now();
                    let ok = match client::post_json(
                        addr,
                        "/predict",
                        &predict_body(&scenario, &features),
                    ) {
                        Ok(reply) => reply.is_success(),
                        Err(_) => false,
                    };
                    metrics.serve_rtt.observe(rtt_started.elapsed());
                    if ok {
                        metrics.serve_predicts.inc();
                    } else {
                        predict_failures += 1;
                        metrics.serve_predict_failures.inc();
                        if let Some(flight) = flight {
                            flight.record(
                                "serve_predict_failed",
                                &format!("tick={t} addr={addr}"),
                                Some(micros(rtt_started.elapsed())),
                            );
                        }
                    }
                }
            }
        }

        // Decide whether to roll.
        let trigger = if controller.active().is_none() {
            match first_complete {
                Some(fc) if (t + 1).saturating_sub(fc + horizon) >= config.min_train_rows => {
                    Some(RolloverTrigger::Initial)
                }
                _ => None,
            }
        } else if t - last_roll_tick >= config.min_refit_gap {
            if t - last_roll_tick >= config.refit_every {
                Some(RolloverTrigger::Scheduled)
            } else if complete
                && controller
                    .active()
                    .map(|a| a.drift.drifted(&features))
                    .unwrap_or(false)
            {
                Some(RolloverTrigger::Drift)
            } else if decay.as_ref().map(DecayMonitor::decayed).unwrap_or(false) {
                Some(RolloverTrigger::Decay)
            } else {
                None
            }
        } else {
            None
        };

        if let Some(trigger) = trigger {
            let fc = first_complete.expect("a trigger requires complete history");
            let roll_started = Instant::now();
            let outcome = controller.roll(&history, &closes, fc, trigger)?;
            // Rollovers are rare; the by-name path is fine off the hot loop.
            registry.inc(&format!("stream.rollovers.{}", trigger.label()));
            if let Some(flight) = flight {
                flight.record(
                    "rollover",
                    &format!(
                        "tick={t} trigger={} warm={} train_mse={:.6}",
                        trigger.label(),
                        outcome.warm,
                        outcome.train_mse
                    ),
                    Some(micros(roll_started.elapsed())),
                );
            }
            match trigger {
                RolloverTrigger::Initial => {}
                RolloverTrigger::Scheduled => scheduled_triggers += 1,
                RolloverTrigger::Drift => drift_triggers += 1,
                RolloverTrigger::Decay => decay_triggers += 1,
            }
            if outcome.warm {
                warm_rollovers += 1;
            }
            final_train_mse = Some(outcome.train_mse);
            decay = Some(DecayMonitor::new(
                horizon,
                config.decay_window,
                config.decay_ratio,
                outcome.train_mse,
            ));
            last_roll_tick = t;
        }
    }
    let elapsed = started.elapsed();

    // Export the complete feature rows for `repro predict` and CI's
    // served-vs-CLI parity check.
    let features_csv = match first_complete {
        Some(fc) if fc < history.len() => {
            let frame = history.slice_frame(fc, history.len())?;
            let path = config
                .store_dir
                .join(format!("features_stream_{scenario}.csv"));
            write_frame_to_path(&frame, &path)?;
            Some(path)
        }
        _ => None,
    };

    let elapsed_secs = elapsed.as_secs_f64();
    Ok(StreamReport {
        scenario,
        ticks,
        rollovers: controller.rolls(),
        warm_rollovers,
        scheduled_triggers,
        drift_triggers,
        decay_triggers,
        predict_requests,
        predict_failures,
        final_artifact: controller.active().map(|a| a.artifact_id.clone()),
        final_train_mse,
        elapsed_secs,
        ticks_per_sec: ticks as f64 / elapsed_secs.max(1e-9),
        features_csv,
    })
}

/// Saturating whole microseconds of a `Duration`.
fn micros(d: std::time::Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// One-row `/predict` body; floats render through `Display`, which the
/// server echoes back, keeping served output diffable against the CLI.
fn predict_body(scenario: &str, row: &[f64]) -> String {
    let mut body = String::with_capacity(160);
    body.push_str("{\"scenario\":");
    write_escaped(&mut body, scenario);
    body.push_str(",\"model\":\"gbdt\",\"rows\":[[");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{v}"));
    }
    body.push_str("]]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("c100_runner_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn loop_fits_rolls_and_exports_features() {
        let dir = temp_dir("loop");
        let mut config = StreamConfig::new(&dir);
        config.seed = 7;
        config.ticks = 140;
        config.refit_every = 40;
        config.min_train_rows = 30;
        config.gbdt.n_estimators = 8;
        let registry = Arc::new(MetricsRegistry::new());

        let flight = FlightRecorder::new();
        let report = run_stream(&config, &registry, None, Some(&flight)).unwrap();
        assert_eq!(report.ticks, 140);
        // Initial fit near tick 65, scheduled refits at +40 cadence.
        assert!(report.rollovers >= 2, "rollovers: {}", report.rollovers);
        assert!(report.warm_rollovers >= 1);
        assert_eq!(report.rollovers, 1 + report.warm_rollovers);
        assert_eq!(report.predict_requests, 0, "no server attached");
        let final_id = report.final_artifact.clone().unwrap();

        // The final artifact is resolvable and carries the stream schema.
        let store = ArtifactStore::open(&dir).unwrap();
        let latest = store.latest_family("2019_7", "gbdt").unwrap().clone();
        assert_eq!(latest.id, final_id);
        let artifact = store.load(&final_id).unwrap();
        assert_eq!(artifact.features, FEATURE_NAMES);

        // Feature CSV exists, starts at the first complete row (29),
        // and parses back with the stream schema.
        let csv = report.features_csv.clone().unwrap();
        let frame = c100_timeseries::csv::read_frame_from_path(&csv).unwrap();
        assert_eq!(frame.len(), 140 - 29);
        for name in FEATURE_NAMES {
            assert!(frame.column(name).is_some(), "missing column {name}");
        }

        // Metrics counters moved.
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["stream.ticks_total"], 140);
        assert_eq!(
            snapshot.counters["model_rollovers_total"] as usize,
            report.rollovers
        );

        // Tick-to-forecast latency recorded once per local forecast;
        // no server attached, so the RTT histogram exists but is empty.
        let t2f = &snapshot.histograms["stream.tick_to_forecast_micros"];
        assert_eq!(t2f.count, snapshot.counters["stream.forecasts_total"]);
        assert!(t2f.count > 0);
        assert_eq!(snapshot.histograms["stream.serve_rtt_micros"].count, 0);

        // The flight recorder saw every rollover (and nothing failed).
        let rolls = flight
            .snapshot()
            .iter()
            .filter(|r| r.kind == "rollover")
            .count();
        assert_eq!(rolls, report.rollovers);

        // The JSON report round-trips through the obs parser.
        let parsed = c100_obs::json::parse(&report.to_json()).unwrap();
        assert_eq!(
            parsed.req_uint("rollovers").unwrap() as usize,
            report.rollovers
        );
        assert_eq!(parsed.req_str("scenario").unwrap(), "2019_7");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_ticks_config_is_rejected() {
        let mut config = StreamConfig::new(std::env::temp_dir());
        config.ticks = 0;
        let registry = Arc::new(MetricsRegistry::new());
        assert!(matches!(
            run_stream(&config, &registry, None, None),
            Err(StreamError::Config(_))
        ));
    }
}
