//! Microbenchmarks of the ML substrate: tree/forest/GBDT fitting,
//! prediction, permutation importance and TreeSHAP. The exact-vs-histogram
//! training comparison is additionally recorded to
//! `results/BENCH_train.json` so later PRs can diff fit-time regressions.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c100_bench::dataset::synthetic_regression;
use c100_bench::{bench_env_json, write_bench_record};
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::importance::{permutation_importance, PermutationConfig};
use c100_ml::shap::{tree_shap, ShapExplainable};
use c100_ml::tree::{MaxFeatures, SplitMethod, TreeConfig};
use c100_ml::Regressor;

fn bench_tree_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_fit");
    for &(rows, feats) in &[(500usize, 20usize), (1000, 50)] {
        let data = synthetic_regression(rows, feats, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{feats}")),
            &data,
            |b, (x, y)| {
                let cfg = TreeConfig {
                    max_depth: Some(10),
                    ..Default::default()
                };
                b.iter(|| cfg.fit(x, y, 0).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_forest_fit(c: &mut Criterion) {
    let (x, y) = synthetic_regression(800, 40, 2);
    c.bench_function("forest_fit_50trees_800x40", |b| {
        let cfg = RandomForestConfig {
            n_estimators: 50,
            max_depth: Some(10),
            max_features: MaxFeatures::Sqrt,
            ..Default::default()
        };
        b.iter(|| cfg.fit(&x, &y, 0).unwrap());
    });
}

fn bench_gbdt_fit(c: &mut Criterion) {
    let (x, y) = synthetic_regression(800, 40, 3);
    c.bench_function("gbdt_fit_50rounds_800x40", |b| {
        let cfg = GbdtConfig {
            n_estimators: 50,
            max_depth: 4,
            colsample_bytree: 0.5,
            ..Default::default()
        };
        b.iter(|| cfg.fit(&x, &y, 0).unwrap());
    });
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = synthetic_regression(800, 40, 4);
    let forest = RandomForestConfig {
        n_estimators: 50,
        max_depth: Some(10),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("forest_predict_800rows", |b| b.iter(|| forest.predict(&x)));
}

fn bench_permutation_importance(c: &mut Criterion) {
    let (x, y) = synthetic_regression(400, 30, 5);
    let forest = RandomForestConfig {
        n_estimators: 20,
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("pfi_30features_3repeats", |b| {
        let cfg = PermutationConfig {
            n_repeats: 3,
            seed: 0,
        };
        b.iter(|| permutation_importance(&forest, &x, &y, &cfg).unwrap());
    });
}

fn bench_tree_shap(c: &mut Criterion) {
    let (x, y) = synthetic_regression(500, 20, 6);
    let fit = TreeConfig {
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("treeshap_single_row_depth8", |b| {
        b.iter(|| tree_shap(&fit.tree, x.row(0)))
    });

    let forest = RandomForestConfig {
        n_estimators: 20,
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("treeshap_forest_row_20trees", |b| {
        b.iter(|| forest.shap_row(x.row(0)))
    });
}

/// Median of three manual fit timings, independent of Criterion's own
/// sampling (the recorded JSON must not depend on sampler settings).
fn median_fit_secs(mut fit: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            fit();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[1]
}

/// Exact vs histogram training time for RF and GBDT on two dataset sizes
/// (the larger matches a pipeline scenario's ~2000×283 design matrix).
/// Criterion tracks the small size; both sizes land in
/// `results/BENCH_train.json` with their median times and speedup.
fn bench_split_methods(c: &mut Criterion) {
    let mut recorded = format!(
        "{{\"bench\":\"train_split_methods\",\"env\":{},\"results\":[",
        bench_env_json()
    );
    let mut first = true;
    let mut group = c.benchmark_group("train_split_methods");
    for &(rows, feats) in &[(600usize, 50usize), (2000, 283)] {
        let (x, y) = synthetic_regression(rows, feats, 7);
        let rf_exact = RandomForestConfig {
            n_estimators: 10,
            max_depth: Some(8),
            max_features: MaxFeatures::All,
            split_method: SplitMethod::Exact,
            ..Default::default()
        };
        // Depth 5 matches the deepest GBDT config in the full-profile
        // grid; the speedup is depth-dependent (small nodes are
        // parity-pinned to the exact gain formula), so the bench depth
        // is chosen to mirror what the pipeline actually fits.
        let gbdt_exact = GbdtConfig {
            n_estimators: 20,
            max_depth: 5,
            split_method: SplitMethod::Exact,
            ..Default::default()
        };
        type FitEntry = (&'static str, &'static str, Box<dyn FnMut()>);
        let mut fits: Vec<FitEntry> = vec![
            ("rf", "exact", {
                let (cfg, x, y) = (rf_exact.clone(), x.clone(), y.clone());
                Box::new(move || {
                    cfg.fit(&x, &y, 0).unwrap();
                })
            }),
            ("rf", "hist", {
                let cfg = RandomForestConfig {
                    split_method: SplitMethod::default(),
                    ..rf_exact.clone()
                };
                let (x, y) = (x.clone(), y.clone());
                Box::new(move || {
                    cfg.fit(&x, &y, 0).unwrap();
                })
            }),
            ("gbdt", "exact", {
                let (cfg, x, y) = (gbdt_exact.clone(), x.clone(), y.clone());
                Box::new(move || {
                    cfg.fit(&x, &y, 0).unwrap();
                })
            }),
            ("gbdt", "hist", {
                let cfg = GbdtConfig {
                    split_method: SplitMethod::default(),
                    ..gbdt_exact.clone()
                };
                let (x, y) = (x.clone(), y.clone());
                Box::new(move || {
                    cfg.fit(&x, &y, 0).unwrap();
                })
            }),
        ];

        let mut medians = std::collections::BTreeMap::new();
        for (family, method, fit) in &mut fits {
            medians.insert((*family, *method), median_fit_secs(fit));
        }
        for (family, depth) in [("rf", 8usize), ("gbdt", 5)] {
            let exact = medians[&(family, "exact")];
            let hist = medians[&(family, "hist")];
            if !first {
                recorded.push(',');
            }
            first = false;
            recorded.push_str(&format!(
                "{{\"model\":\"{family}\",\"rows\":{rows},\"features\":{feats},\
                 \"max_depth\":{depth},\
                 \"exact_median_secs\":{exact:.4},\"hist_median_secs\":{hist:.4},\
                 \"speedup\":{:.2}}}",
                exact / hist
            ));
        }

        // Criterion sampling only on the small size: the exact fit on the
        // scenario-sized matrix is measured above, and re-sampling it
        // through Criterion would dominate the bench suite's wall time.
        if rows == 600 {
            for (family, method, fit) in &mut fits {
                group.bench_with_input(
                    BenchmarkId::from_parameter(format!("{family}_{method}_{rows}x{feats}")),
                    &(),
                    |b, ()| b.iter(&mut *fit),
                );
            }
        }
    }
    group.finish();
    recorded.push_str("]}\n");

    let path = write_bench_record("BENCH_train.json", &recorded);
    eprintln!(
        "recorded training split-method comparison -> {}",
        path.display()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_split_methods, bench_tree_fit, bench_forest_fit, bench_gbdt_fit,
              bench_predict, bench_permutation_importance, bench_tree_shap
}
criterion_main!(benches);
