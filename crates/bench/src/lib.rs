//! Shared setup for the reproduction binary and the Criterion benches.

pub mod dataset;

use std::path::PathBuf;

use c100_core::profile::Profile;
use c100_synth::SynthConfig;
use c100_timeseries::Date;

/// The data/compute sizing of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProfile {
    /// Minimal span and assets: seconds-to-minutes, for CI smoke runs
    /// and trace/compare exercises. Still starts at 2017-01-01 so every
    /// scenario (both period sets) can be built.
    Smoke,
    /// Reduced span and grids: minutes, for smoke runs and benches.
    Fast,
    /// The paper-sized run: full 2017-2023 span, full grids.
    Full,
}

impl RunProfile {
    /// Parses `smoke` / `fast` / `full`.
    pub fn parse(s: &str) -> Option<RunProfile> {
        match s {
            "smoke" => Some(RunProfile::Smoke),
            "fast" => Some(RunProfile::Fast),
            "full" => Some(RunProfile::Full),
            _ => None,
        }
    }

    /// The synthetic-data configuration for this profile.
    pub fn synth_config(self, seed: u64) -> SynthConfig {
        match self {
            RunProfile::Smoke => SynthConfig {
                seed,
                start: Date::from_ymd(2017, 1, 1).expect("valid constant"),
                end: Date::from_ymd(2020, 6, 30).expect("valid constant"),
                n_assets: 120,
                warmup_days: 250,
            },
            RunProfile::Fast => SynthConfig {
                seed,
                n_assets: 150,
                ..SynthConfig::default()
            },
            RunProfile::Full => SynthConfig {
                seed,
                ..SynthConfig::default()
            },
        }
    }

    /// The pipeline compute profile.
    pub fn pipeline_profile(self, seed: u64) -> Profile {
        match self {
            RunProfile::Smoke => Profile::fast(),
            // The fast profile still runs the full 2017-2023 span, so
            // give SHAP a few more rows than the test default.
            RunProfile::Fast => Profile::fast().with_shap_rows(192),
            RunProfile::Full => Profile::full(),
        }
        .with_seed(seed)
    }
}

/// The metadata envelope every recorded `results/BENCH_*.json` carries:
/// the git revision the numbers were measured at, the build profile
/// (release vs debug decides everything for tree code), and the
/// machine's thread count (parallel benches scale with it). Without
/// these, cross-PR diffs of bench files compare apples to oranges.
pub fn bench_env_json() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{{\"git_rev\":\"{rev}\",\"profile\":\"{profile}\",\"threads\":{threads}}}")
}

/// Validates that a bench record carries the envelope: a `bench` name
/// plus an `env` object with `git_rev`, `profile` and `threads`.
/// Returns the problem when it doesn't.
pub fn check_bench_envelope(text: &str) -> Result<(), String> {
    let value = c100_obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    value
        .req_str("bench")
        .map_err(|e| format!("missing bench name: {e}"))?;
    let env = value
        .get("env")
        .ok_or_else(|| "missing \"env\" envelope".to_string())?;
    env.req_str("git_rev")
        .map_err(|e| format!("env.git_rev: {e}"))?;
    env.req_str("profile")
        .map_err(|e| format!("env.profile: {e}"))?;
    env.req_uint("threads")
        .map_err(|e| format!("env.threads: {e}"))?;
    Ok(())
}

/// Writes a recorded bench file into `results/`, asserting the metadata
/// envelope first — a bench that forgets [`bench_env_json`] fails at
/// record time, not at diff time months later.
pub fn write_bench_record(file_name: &str, text: &str) -> PathBuf {
    if let Err(problem) = check_bench_envelope(text) {
        panic!("{file_name}: {problem}");
    }
    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&results_dir).expect("create results dir");
    let path = results_dir.join(file_name);
    std::fs::write(&path, text).expect("write bench record");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_json_is_a_valid_envelope_fragment() {
        let record = format!(
            "{{\"bench\":\"x\",\"env\":{},\"results\":[]}}",
            bench_env_json()
        );
        check_bench_envelope(&record).unwrap();
    }

    #[test]
    fn envelope_check_names_whats_missing() {
        let err = check_bench_envelope("{\"bench\":\"x\",\"results\":[]}").unwrap_err();
        assert!(err.contains("env"), "{err}");
        let err = check_bench_envelope(
            "{\"bench\":\"x\",\"env\":{\"git_rev\":\"abc\",\"profile\":\"release\"}}",
        )
        .unwrap_err();
        assert!(err.contains("threads"), "{err}");
        let err = check_bench_envelope("not json").unwrap_err();
        assert!(err.contains("JSON"), "{err}");
    }
}
