//! Dense row-major design matrix used by every model in this crate.

use crate::{MlError, Result};

/// A dense, row-major matrix of feature values.
///
/// Row-major keeps a single sample contiguous, which is what both tree
/// traversal and prediction want; split finding gathers one feature column
/// into a scratch buffer per node instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n_features: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MlError::BadInput("no rows".into()));
        }
        let n_features = rows[0].len();
        if n_features == 0 {
            return Err(MlError::BadInput("zero-width rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * n_features);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(MlError::BadInput(format!(
                    "row {i} has {} values, expected {n_features}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { n_features, data })
    }

    /// Builds a matrix from an existing row-major buffer.
    pub fn from_row_major(data: Vec<f64>, n_features: usize) -> Result<Self> {
        if n_features == 0 || data.is_empty() || data.len() % n_features != 0 {
            return Err(MlError::BadInput(format!(
                "buffer of {} values is not a multiple of {n_features} features",
                data.len()
            )));
        }
        Ok(Matrix { n_features, data })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_features
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// One sample row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.n_features..(r + 1) * self.n_features]
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n_features + col]
    }

    /// Sets the value at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n_features + col] = value;
    }

    /// Copies feature column `col` into `out` (resized to fit).
    pub fn gather_column(&self, col: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n_rows()).map(|r| self.get(r, col)));
    }

    /// Builds a new matrix from the given subset of row indices.
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.n_features);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            n_features: self.n_features,
            data,
        }
    }

    /// Builds a new matrix keeping only the given feature columns, in order.
    pub fn take_columns(&self, cols: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.n_rows() * cols.len());
        for r in 0..self.n_rows() {
            let row = self.row(r);
            data.extend(cols.iter().map(|&c| row[c]));
        }
        Matrix {
            n_features: cols.len(),
            data,
        }
    }
}

/// Validates that `x` and `y` agree and are non-trivial for fitting.
pub fn check_fit_input(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.n_rows() != y.len() {
        return Err(MlError::BadInput(format!(
            "{} rows but {} targets",
            x.n_rows(),
            y.len()
        )));
    }
    if y.is_empty() {
        return Err(MlError::BadInput("empty training set".into()));
    }
    if y.iter().any(|v| v.is_nan()) || (0..x.n_rows()).any(|r| x.row(r).iter().any(|v| v.is_nan()))
    {
        return Err(MlError::BadInput("NaN in training data".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_row_major_validates_multiple() {
        assert!(Matrix::from_row_major(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(Matrix::from_row_major(vec![], 2).is_err());
        let m = Matrix::from_row_major(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn gather_column_extracts_strided_values() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        let mut col = Vec::new();
        m.gather_column(1, &mut col);
        assert_eq!(col, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn take_rows_and_columns() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let sub = m.take_rows(&[2, 0]);
        assert_eq!(sub.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(sub.row(1), &[1.0, 2.0, 3.0]);
        let cols = m.take_columns(&[2, 0]);
        assert_eq!(cols.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn check_fit_input_catches_nan_and_mismatch() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(check_fit_input(&m, &[1.0]).is_err());
        assert!(check_fit_input(&m, &[1.0, f64::NAN]).is_err());
        let bad = Matrix::from_rows(&[vec![f64::NAN], vec![2.0]]).unwrap();
        assert!(check_fit_input(&bad, &[1.0, 2.0]).is_err());
        assert!(check_fit_input(&m, &[1.0, 2.0]).is_ok());
    }
}
