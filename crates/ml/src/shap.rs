//! TreeSHAP: exact Shapley values for tree ensembles in polynomial time.
//!
//! Implements Algorithm 2 of Lundberg, Erion & Lee, "Consistent
//! Individualized Feature Attribution for Tree Ensembles" (2018). The
//! recursion tracks, for each root-to-node path, the proportion of feature
//! subsets that flow down the path ("zero fraction", using training cover)
//! and whether the explained instance follows it ("one fraction"),
//! maintaining Shapley permutation weights incrementally.
//!
//! The key invariant — *local accuracy*: for every row,
//! `Σ_i φ_i + E[f] = f(row)` — is enforced by tests and a proptest in this
//! module; it pins the implementation to the exact algorithm rather than an
//! approximation.

use rayon::prelude::*;

use crate::data::Matrix;
use crate::forest::RandomForest;
use crate::gbdt::Gbdt;
use crate::tree::{FittedTree, Tree};

/// SHAP attribution of one prediction.
#[derive(Debug, Clone)]
pub struct ShapExplanation {
    /// Per-feature Shapley values.
    pub values: Vec<f64>,
    /// Expected model output over the training distribution.
    pub base_value: f64,
}

impl ShapExplanation {
    /// The reconstructed prediction `base + Σ values`.
    pub fn reconstructed(&self) -> f64 {
        self.base_value + self.values.iter().sum::<f64>()
    }
}

/// A model whose predictions TreeSHAP can attribute.
pub trait ShapExplainable {
    /// Explains a single row.
    fn shap_row(&self, row: &[f64]) -> ShapExplanation;
}

#[derive(Debug, Clone, Copy)]
struct PathElement {
    /// Feature index of the split that created this element (-1 for the
    /// root sentinel).
    feature: i64,
    /// Fraction of training mass flowing down this path when the feature
    /// is "out" of the subset.
    zero_fraction: f64,
    /// 1.0 when the explained instance follows this path, else 0.0.
    one_fraction: f64,
    /// Shapley permutation weight for this path length.
    pweight: f64,
}

fn extend(path: &mut Vec<PathElement>, zero_fraction: f64, one_fraction: f64, feature: i64) {
    let l = path.len();
    path.push(PathElement {
        feature,
        zero_fraction,
        one_fraction,
        pweight: if l == 0 { 1.0 } else { 0.0 },
    });
    for i in (0..l).rev() {
        path[i + 1].pweight += one_fraction * path[i].pweight * (i + 1) as f64 / (l + 1) as f64;
        path[i].pweight = zero_fraction * path[i].pweight * (l - i) as f64 / (l + 1) as f64;
    }
}

fn unwind(path: &mut Vec<PathElement>, i: usize) {
    let l = path.len() - 1;
    let one = path[i].one_fraction;
    let zero = path[i].zero_fraction;
    let mut n = path[l].pweight;
    if one != 0.0 {
        for j in (0..l).rev() {
            let t = path[j].pweight;
            path[j].pweight = n * (l + 1) as f64 / ((j + 1) as f64 * one);
            n = t - path[j].pweight * zero * (l - j) as f64 / (l + 1) as f64;
        }
    } else {
        for j in (0..l).rev() {
            path[j].pweight = path[j].pweight * (l + 1) as f64 / (zero * (l - j) as f64);
        }
    }
    for j in i..l {
        path[j].feature = path[j + 1].feature;
        path[j].zero_fraction = path[j + 1].zero_fraction;
        path[j].one_fraction = path[j + 1].one_fraction;
    }
    path.pop();
}

/// Sum of permutation weights after hypothetically unwinding element `i`.
fn unwound_sum(path: &[PathElement], i: usize) -> f64 {
    let mut copy = path.to_vec();
    unwind(&mut copy, i);
    copy.iter().map(|e| e.pweight).sum()
}

struct ShapCtx<'a> {
    tree: &'a Tree,
    row: &'a [f64],
    phi: Vec<f64>,
}

impl<'a> ShapCtx<'a> {
    fn recurse(
        &mut self,
        node_idx: u32,
        mut path: Vec<PathElement>,
        parent_zero: f64,
        parent_one: f64,
        parent_feature: i64,
    ) {
        extend(&mut path, parent_zero, parent_one, parent_feature);
        let node = &self.tree.nodes[node_idx as usize];
        if node.is_leaf() {
            for i in 1..path.len() {
                let w = unwound_sum(&path, i);
                let el = &path[i];
                self.phi[el.feature as usize] +=
                    w * (el.one_fraction - el.zero_fraction) * node.value;
            }
            return;
        }
        let feature = node.feature as i64;
        let (hot, cold) = if self.row[node.feature as usize] <= node.threshold {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        let hot_cover = self.tree.nodes[hot as usize].cover;
        let cold_cover = self.tree.nodes[cold as usize].cover;
        let node_cover = node.cover.max(f64::MIN_POSITIVE);

        let mut incoming_zero = 1.0;
        let mut incoming_one = 1.0;
        // If this feature already split higher up the path, undo its
        // previous contribution before re-adding (each feature appears at
        // most once on a path).
        if let Some(k) = path.iter().position(|e| e.feature == feature) {
            incoming_zero = path[k].zero_fraction;
            incoming_one = path[k].one_fraction;
            unwind(&mut path, k);
        }

        self.recurse(
            hot,
            path.clone(),
            incoming_zero * hot_cover / node_cover,
            incoming_one,
            feature,
        );
        self.recurse(
            cold,
            path,
            incoming_zero * cold_cover / node_cover,
            0.0,
            feature,
        );
    }
}

/// Exact per-feature Shapley values for a single tree and row.
pub fn tree_shap(tree: &Tree, row: &[f64]) -> Vec<f64> {
    let mut ctx = ShapCtx {
        tree,
        row,
        phi: vec![0.0; tree.n_features],
    };
    if !tree.nodes.is_empty() {
        ctx.recurse(0, Vec::new(), 1.0, 1.0, -1);
    }
    ctx.phi
}

impl ShapExplainable for FittedTree {
    fn shap_row(&self, row: &[f64]) -> ShapExplanation {
        ShapExplanation {
            values: tree_shap(&self.tree, row),
            base_value: self.tree.expected_value(),
        }
    }
}

impl ShapExplainable for RandomForest {
    fn shap_row(&self, row: &[f64]) -> ShapExplanation {
        let mut values = vec![0.0; self.n_features];
        let mut base = 0.0;
        for t in &self.trees {
            for (acc, v) in values.iter_mut().zip(tree_shap(&t.tree, row)) {
                *acc += v;
            }
            base += t.tree.expected_value();
        }
        let k = self.trees.len() as f64;
        for v in &mut values {
            *v /= k;
        }
        ShapExplanation {
            values,
            base_value: base / k,
        }
    }
}

impl ShapExplainable for Gbdt {
    fn shap_row(&self, row: &[f64]) -> ShapExplanation {
        let mut values = vec![0.0; self.n_features];
        let mut base = self.base_score;
        for t in &self.trees {
            for (acc, v) in values.iter_mut().zip(tree_shap(t, row)) {
                *acc += v;
            }
            base += t.expected_value();
        }
        ShapExplanation {
            values,
            base_value: base,
        }
    }
}

/// SHAP values for every row of `x`, computed in parallel.
pub fn shap_values<M: ShapExplainable + Sync>(model: &M, x: &Matrix) -> Vec<ShapExplanation> {
    (0..x.n_rows())
        .into_par_iter()
        .map(|r| model.shap_row(x.row(r)))
        .collect()
}

/// Global importance as mean |SHAP| per feature over the rows of `x` —
/// the ranking the paper combines with FRA's output.
pub fn mean_abs_shap<M: ShapExplainable + Sync>(model: &M, x: &Matrix) -> Vec<f64> {
    let explanations = shap_values(model, x);
    let n_features = explanations.first().map_or(0, |e| e.values.len());
    let mut acc = vec![0.0; n_features];
    for e in &explanations {
        for (a, v) in acc.iter_mut().zip(&e.values) {
            *a += v.abs();
        }
    }
    let n = explanations.len().max(1) as f64;
    for a in &mut acc {
        *a /= n;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Matrix;
    use crate::forest::RandomForestConfig;
    use crate::gbdt::GbdtConfig;
    use crate::tree::TreeConfig;
    use crate::Regressor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 10.0).collect();
            let target = 2.0 * f[0] + f[1 % d] * f[2 % d] * 0.1 + rng.gen::<f64>();
            rows.push(f);
            y.push(target);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn single_split_tree_attributes_only_split_feature() {
        // y depends on feature 1 only.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![0.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig {
            max_depth: Some(1),
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let phi = tree_shap(&fit.tree, &[0.0, 9.0]);
        assert_eq!(phi[0], 0.0);
        // Mean prediction is 5, actual 10: feature 1 contributes +5.
        assert!((phi[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn local_accuracy_single_tree() {
        let (x, y) = random_data(80, 4, 1);
        let fit = TreeConfig {
            max_depth: Some(5),
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        for r in 0..x.n_rows() {
            let exp = fit.shap_row(x.row(r));
            let pred = fit.predict_row(x.row(r));
            assert!(
                (exp.reconstructed() - pred).abs() < 1e-7,
                "row {r}: {} vs {}",
                exp.reconstructed(),
                pred
            );
        }
    }

    #[test]
    fn local_accuracy_forest() {
        let (x, y) = random_data(60, 3, 3);
        let model = RandomForestConfig {
            n_estimators: 12,
            max_depth: Some(4),
            ..Default::default()
        }
        .fit(&x, &y, 5)
        .unwrap();
        for r in (0..x.n_rows()).step_by(7) {
            let exp = model.shap_row(x.row(r));
            let pred = model.predict_row(x.row(r));
            assert!((exp.reconstructed() - pred).abs() < 1e-7);
        }
    }

    #[test]
    fn local_accuracy_gbdt() {
        let (x, y) = random_data(60, 3, 7);
        let model = GbdtConfig {
            n_estimators: 15,
            max_depth: 3,
            ..Default::default()
        }
        .fit(&x, &y, 9)
        .unwrap();
        for r in (0..x.n_rows()).step_by(5) {
            let exp = model.shap_row(x.row(r));
            let pred = model.predict_row(x.row(r));
            assert!((exp.reconstructed() - pred).abs() < 1e-7);
        }
    }

    #[test]
    fn irrelevant_feature_gets_zero_shap() {
        // Feature 1 never appears in any split.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 42.0]).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64).powi(2)).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        for r in 0..5 {
            let phi = tree_shap(&fit.tree, x.row(r));
            assert_eq!(phi[1], 0.0);
        }
    }

    #[test]
    fn stump_only_tree_gives_zero_attribution() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &[3.0; 5], 0).unwrap();
        let phi = tree_shap(&fit.tree, &[2.0]);
        assert_eq!(phi, vec![0.0]);
        let exp = fit.shap_row(&[2.0]);
        assert_eq!(exp.base_value, 3.0);
    }

    #[test]
    fn mean_abs_shap_ranks_signal_first() {
        let (x, y) = random_data(150, 4, 11);
        let model = RandomForestConfig {
            n_estimators: 20,
            max_depth: Some(5),
            ..Default::default()
        }
        .fit(&x, &y, 13)
        .unwrap();
        let global = mean_abs_shap(&model, &x);
        let top = global
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(top, 0, "importances: {global:?}");
    }

    #[test]
    fn shap_values_parallel_matches_serial() {
        let (x, y) = random_data(40, 3, 17);
        let model = GbdtConfig {
            n_estimators: 8,
            max_depth: 3,
            ..Default::default()
        }
        .fit(&x, &y, 19)
        .unwrap();
        let parallel = shap_values(&model, &x);
        for (r, par) in parallel.iter().enumerate() {
            let serial = model.shap_row(x.row(r));
            assert_eq!(par.values, serial.values);
        }
    }
}
