//! Benchmarks of the artifact store: encode, decode+verify (the load
//! path), and batch-prediction throughput at several chunk sizes.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_store::{BatchPredictor, ModelArtifact, ModelPayload};

fn synthetic_regression(n_rows: usize, n_features: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n_rows);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let f: Vec<f64> = (0..n_features).map(|_| rng.gen::<f64>()).collect();
        let target =
            5.0 * f[0] + 3.0 * (f[1] * std::f64::consts::PI).sin() + 0.1 * rng.gen::<f64>();
        rows.push(f);
        y.push(target);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn wrap(model: ModelPayload, n_features: usize) -> ModelArtifact {
    ModelArtifact {
        scenario: "2019_7".into(),
        period: "2019".into(),
        window: 7,
        features: (0..n_features).map(|i| format!("feat_{i}")).collect(),
        profile: "bench".into(),
        seed: 0,
        train_rows: 0,
        train_start: "2019-01-01".into(),
        train_end: "2019-12-31".into(),
        hyperparameters: BTreeMap::new(),
        model,
    }
}

fn rf_artifact(n_features: usize) -> ModelArtifact {
    let (x, y) = synthetic_regression(400, n_features, 1);
    let model = RandomForestConfig {
        n_estimators: 30,
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 2)
    .unwrap();
    wrap(ModelPayload::Rf(model), n_features)
}

fn gbdt_artifact(n_features: usize) -> ModelArtifact {
    let (x, y) = synthetic_regression(400, n_features, 3);
    let model = GbdtConfig {
        n_estimators: 30,
        max_depth: 5,
        ..Default::default()
    }
    .fit(&x, &y, 4)
    .unwrap();
    wrap(ModelPayload::Gbdt(model), n_features)
}

fn bench_encode(c: &mut Criterion) {
    let rf = rf_artifact(30);
    let gbdt = gbdt_artifact(30);
    let mut group = c.benchmark_group("artifact_encode");
    group.bench_function("rf_30trees", |b| b.iter(|| rf.encode()));
    group.bench_function("gbdt_30trees", |b| b.iter(|| gbdt.encode()));
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let rf_text = rf_artifact(30).encode().text;
    let gbdt_text = gbdt_artifact(30).encode().text;
    let mut group = c.benchmark_group("artifact_decode_verify");
    group.bench_function("rf_30trees", |b| {
        b.iter(|| ModelArtifact::decode(&rf_text).unwrap())
    });
    group.bench_function("gbdt_30trees", |b| {
        b.iter(|| ModelArtifact::decode(&gbdt_text).unwrap())
    });
    group.finish();
}

fn bench_batch_predict(c: &mut Criterion) {
    let artifact = rf_artifact(30);
    let (x, _) = synthetic_regression(4096, 30, 9);
    let mut group = c.benchmark_group("batch_predict_4096x30");
    for &chunk in &[32usize, 256, 1024] {
        let predictor = BatchPredictor::new(artifact.clone()).with_chunk_rows(chunk);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("chunk{chunk}")),
            &x,
            |b, x| b.iter(|| predictor.predict_matrix(x).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_batch_predict);
criterion_main!(benches);
