//! CART regression trees with exact greedy or histogram split search.
//!
//! The tree is stored as a flat node arena ([`Tree`]); the same structure
//! is produced by the variance-criterion builder here and by the
//! gradient-statistics builder in [`crate::gbdt`], so prediction and
//! TreeSHAP are shared between model families.
//!
//! Split search comes in two flavours selected by [`SplitMethod`]:
//!
//! * **Exact** — per node, gather each candidate feature column, sort,
//!   and scan every boundary between distinct values. `O(n log n)` per
//!   feature per node.
//! * **Histogram** (default) — the feature matrix is quantile-binned once
//!   per fit into a column-major [`BinnedMatrix`] (≤ 256 bins → `u8`
//!   codes); per node, `(count, Σy, Σy²)` histograms are accumulated over
//!   the codes and only bin boundaries are scanned. With the full feature
//!   set in play the builder also applies the sibling-subtraction trick:
//!   only the smaller child is re-scanned, the larger child's histogram
//!   is the parent's minus the sibling's. Small nodes fall back to an
//!   integer-key sort over codes, which beats both a full histogram scan
//!   and the exact float sort there.
//!
//! Both builders consume identical RNG streams, visit candidates in the
//! same order, and apply the same tie-breaking, so when every feature has
//! at most `max_bins` distinct values they produce bit-identical trees
//! (given sums stay exact, e.g. integer-valued targets).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::data::{check_fit_input, BinnedMatrix, ColumnView, Matrix};
use crate::{MlError, Regressor, Result};

/// Candidate-cells threshold (`features × samples`) above which split
/// search fans out across features with rayon. Below it the serial scan
/// wins on overhead.
///
/// Re-measured with the histogram engine (2000×283 synthetic
/// regression, release build, single-core container): 8_192, 16_384 and
/// 65_536 were indistinguishable from each other (every depth/model
/// cell within run-to-run noise, ≈ ±5%), because on one core rayon
/// degenerates to the serial path and dispatch overhead is negligible
/// either way. 16_384 is kept as the prior default: it only matters on
/// multi-core hosts, where it lets medium nodes (≳ 58 rows at 283
/// features) fan out across features.
pub(crate) const PARALLEL_SPLIT_CELLS: usize = 16_384;

/// Default bin budget for [`SplitMethod::Histogram`]: 256 keeps codes in
/// `u8` and is the ceiling used by LightGBM/XGBoost `hist`.
pub const DEFAULT_MAX_BINS: usize = 256;

/// Split-finding strategy for tree growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SplitMethod {
    /// Exact greedy search over sorted raw feature values.
    Exact,
    /// Quantile-binned histogram search; `max_bins` caps bins per feature
    /// (∈ [2, 65536]; ≤ 256 stores codes as `u8`).
    Histogram {
        /// Maximum number of bins per feature.
        max_bins: usize,
    },
}

impl Default for SplitMethod {
    fn default() -> Self {
        SplitMethod::Histogram {
            max_bins: DEFAULT_MAX_BINS,
        }
    }
}

impl SplitMethod {
    /// Compact stable label: `exact` or `hist:<max_bins>`.
    pub fn label(&self) -> String {
        match self {
            SplitMethod::Exact => "exact".into(),
            SplitMethod::Histogram { max_bins } => format!("hist:{max_bins}"),
        }
    }

    /// Parses [`SplitMethod::label`] output plus the shorthand `hist`
    /// (default bin budget). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<SplitMethod> {
        match s {
            "exact" => Some(SplitMethod::Exact),
            "hist" | "histogram" => Some(SplitMethod::default()),
            _ => {
                let bins = s.strip_prefix("hist:")?;
                bins.parse::<usize>()
                    .ok()
                    .map(|max_bins| SplitMethod::Histogram { max_bins })
            }
        }
    }

    /// The bin budget, if histogram-based.
    pub fn max_bins(&self) -> Option<usize> {
        match self {
            SplitMethod::Exact => None,
            SplitMethod::Histogram { max_bins } => Some(*max_bins),
        }
    }
}

/// Sentinel child index marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// One node of a regression tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Node {
    /// Feature index tested at this node (unused for leaves).
    pub feature: u32,
    /// Split threshold: rows with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Left child index, or [`LEAF`].
    pub left: u32,
    /// Right child index, or [`LEAF`].
    pub right: u32,
    /// Predicted value (mean target for CART, boosted weight for GBDT).
    pub value: f64,
    /// Cover: number of training samples (CART) or hessian mass (GBDT)
    /// that reached this node. TreeSHAP needs it for path probabilities.
    pub cover: f64,
    /// Node impurity at fit time (variance for CART).
    pub impurity: f64,
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left == LEAF
    }
}

/// A fitted regression tree: flat arena with node 0 as the root.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Tree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Width of rows this tree was trained on.
    pub n_features: usize,
}

impl Tree {
    /// Depth of the tree (a lone root counts as depth 0).
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], idx: u32) -> usize {
            let node = &nodes[idx as usize];
            if node.is_leaf() {
                0
            } else {
                1 + depth_at(nodes, node.left).max(depth_at(nodes, node.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_at(&self.nodes, 0)
        }
    }

    /// Number of leaf nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Total number of nodes in the arena.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Traverses the tree for one row and returns the leaf value.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.is_leaf() {
                return node.value;
            }
            idx = if row[node.feature as usize] <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }

    /// Cover-weighted mean of leaf values: the tree's expected prediction,
    /// which TreeSHAP reports as the base value.
    pub fn expected_value(&self) -> f64 {
        fn walk(nodes: &[Node], idx: u32) -> f64 {
            let node = &nodes[idx as usize];
            if node.is_leaf() {
                return node.value;
            }
            let l = &nodes[node.left as usize];
            let r = &nodes[node.right as usize];
            let total = l.cover + r.cover;
            if total <= 0.0 {
                return node.value;
            }
            (l.cover * walk(nodes, node.left) + r.cover * walk(nodes, node.right)) / total
        }
        walk(&self.nodes, 0)
    }
}

/// How many features to examine at each split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART; sklearn RF regressor default).
    All,
    /// `round(sqrt(n_features))`, at least 1.
    Sqrt,
    /// `round(log2(n_features))`, at least 1.
    Log2,
    /// A fixed fraction of the features, at least 1.
    Fraction(f64),
    /// An explicit count, clamped to `[1, n_features]`.
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `n_features` columns.
    pub fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (n_features as f64).log2().round() as usize,
            MaxFeatures::Fraction(f) => (n_features as f64 * f).round() as usize,
            MaxFeatures::Count(c) => c,
        };
        k.clamp(1, n_features)
    }
}

/// Hyper-parameters for a single CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth; `None` grows until other limits stop it.
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Feature subsampling per split.
    pub max_features: MaxFeatures,
    /// Minimum total-weighted impurity decrease for a split to be kept.
    pub min_impurity_decrease: f64,
    /// Split-finding strategy.
    pub split_method: SplitMethod,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            min_impurity_decrease: 0.0,
            split_method: SplitMethod::default(),
        }
    }
}

impl TreeConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.min_samples_split < 2 {
            return Err(MlError::BadConfig("min_samples_split must be >= 2".into()));
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::BadConfig("min_samples_leaf must be >= 1".into()));
        }
        if let MaxFeatures::Fraction(f) = self.max_features {
            if !(f > 0.0 && f <= 1.0) {
                return Err(MlError::BadConfig(format!("max_features fraction {f}")));
            }
        }
        if self.min_impurity_decrease < 0.0 {
            return Err(MlError::BadConfig(
                "min_impurity_decrease must be >= 0".into(),
            ));
        }
        if let SplitMethod::Histogram { max_bins } = self.split_method {
            if !(2..=65_536).contains(&max_bins) {
                return Err(MlError::BadConfig(format!(
                    "histogram max_bins must be in [2, 65536], got {max_bins}"
                )));
            }
        }
        Ok(())
    }

    /// Fits a single tree. Sample weights are uniform; `sample_indices`
    /// selects (with repetition allowed) which rows participate, which is
    /// how the forest implements bootstrapping.
    ///
    /// Under [`SplitMethod::Histogram`] this bins `x` first; callers
    /// fitting many trees on the same rows should bin once and use
    /// [`TreeConfig::fit_indices_binned`] instead.
    pub fn fit_indices(
        &self,
        x: &Matrix,
        y: &[f64],
        sample_indices: &[usize],
        seed: u64,
    ) -> Result<FittedTree> {
        match self.split_method {
            SplitMethod::Exact => self.fit_indices_exact(x, y, sample_indices, seed),
            SplitMethod::Histogram { max_bins } => {
                self.validate()?;
                check_fit_input(x, y)?;
                let binned = BinnedMatrix::from_matrix(x, max_bins)?;
                self.fit_indices_binned(&binned, y, sample_indices, seed)
            }
        }
    }

    /// [`TreeConfig::fit_indices`] with exact split search regardless of
    /// [`TreeConfig::split_method`].
    fn fit_indices_exact(
        &self,
        x: &Matrix,
        y: &[f64],
        sample_indices: &[usize],
        seed: u64,
    ) -> Result<FittedTree> {
        self.validate()?;
        check_fit_input(x, y)?;
        if sample_indices.is_empty() {
            return Err(MlError::BadInput("no sample indices".into()));
        }
        let mut builder = Builder {
            x,
            y,
            config: self,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            importances: vec![0.0; x.n_features()],
            n_total: sample_indices.len() as f64,
            feature_pool: (0..x.n_features()).collect(),
            scratch: Vec::new(),
        };
        let mut indices = sample_indices.to_vec();
        builder.grow(&mut indices, 0);
        let sum: f64 = builder.importances.iter().sum();
        if sum > 0.0 {
            for v in &mut builder.importances {
                *v /= sum;
            }
        }
        Ok(FittedTree {
            tree: Tree {
                nodes: builder.nodes,
                n_features: x.n_features(),
            },
            feature_importances: builder.importances,
        })
    }

    /// Histogram-path twin of [`TreeConfig::fit_indices`] working off a
    /// pre-built [`BinnedMatrix`] so the (expensive) binning pass is
    /// shared across trees, boosting rounds, and refits on the same rows.
    ///
    /// The binning's own budget governs the fit; the config's
    /// `split_method` bin budget is not consulted here.
    pub fn fit_indices_binned(
        &self,
        binned: &BinnedMatrix,
        y: &[f64],
        sample_indices: &[usize],
        seed: u64,
    ) -> Result<FittedTree> {
        self.validate()?;
        if binned.n_rows() != y.len() {
            return Err(MlError::BadInput(format!(
                "{} binned rows but {} targets",
                binned.n_rows(),
                y.len()
            )));
        }
        if y.iter().any(|v| v.is_nan()) {
            return Err(MlError::BadInput("NaN in training targets".into()));
        }
        if sample_indices.is_empty() {
            return Err(MlError::BadInput("no sample indices".into()));
        }
        let n_features = binned.n_features();
        let mut offsets = Vec::with_capacity(n_features + 1);
        offsets.push(0usize);
        for f in 0..n_features {
            offsets.push(offsets[f] + binned.n_bins(f));
        }
        let mut builder = HistBuilder {
            binned,
            y,
            config: self,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            importances: vec![0.0; n_features],
            n_total: sample_indices.len() as f64,
            feature_pool: (0..n_features).collect(),
            small_cutoff: (binned.max_bins() / 8).max(16),
            offsets,
            pool: Vec::new(),
            scratch: Vec::new(),
            feat_cells: Vec::new(),
            partition_buf: Vec::new(),
        };
        let mut indices = sample_indices.to_vec();
        builder.grow(&mut indices, 0, None);
        let sum: f64 = builder.importances.iter().sum();
        if sum > 0.0 {
            for v in &mut builder.importances {
                *v /= sum;
            }
        }
        Ok(FittedTree {
            tree: Tree {
                nodes: builder.nodes,
                n_features,
            },
            feature_importances: builder.importances,
        })
    }

    /// Fits a single tree on all rows.
    pub fn fit(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<FittedTree> {
        let all: Vec<usize> = (0..x.n_rows()).collect();
        self.fit_indices(x, y, &all, seed)
    }
}

/// A fitted CART tree together with its MDI importances.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FittedTree {
    /// The tree structure.
    pub tree: Tree,
    /// Normalized Mean Decrease Impurity per feature (sums to 1, or all
    /// zeros when the tree never split).
    pub feature_importances: Vec<f64>,
}

impl Regressor for FittedTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        self.tree.predict_row(row)
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: &'a TreeConfig,
    rng: StdRng,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    n_total: f64,
    feature_pool: Vec<usize>,
    scratch: Vec<(f64, f64)>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    n_left: usize,
    /// Highest bin code routed left (histogram builder only; the exact
    /// builder partitions by threshold and leaves this 0).
    left_bin: usize,
}

/// Partial Fisher-Yates over `pool`: the first `k` entries become the
/// candidate features, then sorted ascending so gain ties break toward
/// the lowest feature index independent of the shuffle. Both the exact
/// and histogram builders draw through this so their RNG streams match.
fn sample_features(rng: &mut StdRng, pool: &mut [usize], k: usize) {
    for i in 0..k {
        let j = i + (rng.next_u64_range(pool.len() - i)) as usize;
        pool.swap(i, j);
    }
    pool[..k].sort_unstable();
}

impl<'a> Builder<'a> {
    /// Grows the subtree over `indices`, returning its node id.
    fn grow(&mut self, indices: &mut [usize], depth: usize) -> u32 {
        let n = indices.len();
        let (mean, impurity) = mean_and_variance(self.y, indices);

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: LEAF,
            value: mean,
            cover: n as f64,
            impurity,
        });

        let depth_ok = self.config.max_depth.map_or(true, |d| depth < d);
        if !depth_ok || n < self.config.min_samples_split || impurity <= 1e-14 {
            return node_id;
        }

        let Some(split) = self.best_split(indices, impurity) else {
            return node_id;
        };

        // Weighted impurity decrease, sklearn-style: (n/N) * Δimpurity.
        let weighted_gain = (n as f64 / self.n_total) * split.gain;
        if weighted_gain <= self.config.min_impurity_decrease {
            return node_id;
        }
        self.importances[split.feature] += weighted_gain;

        // Partition indices in place around the threshold.
        let mid = partition(indices, |&i| {
            self.x.get(i, split.feature) <= split.threshold
        });
        debug_assert_eq!(mid, split.n_left);
        let (left_slice, right_slice) = indices.split_at_mut(mid);

        let left_id = self.grow(left_slice, depth + 1);
        let right_id = self.grow(right_slice, depth + 1);
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left_id;
        node.right = right_id;
        node_id
    }

    /// Exact greedy search over a random feature subset. Large nodes fan
    /// the per-feature scans out across rayon workers; tie-breaking is
    /// identical in both paths (highest gain, then lowest feature index),
    /// so results do not depend on the execution path.
    fn best_split(&mut self, indices: &[usize], node_impurity: f64) -> Option<BestSplit> {
        let n = indices.len();
        let k = self.config.max_features.resolve(self.x.n_features());
        sample_features(&mut self.rng, &mut self.feature_pool, k);
        let min_leaf = self.config.min_samples_leaf;

        if k * n >= PARALLEL_SPLIT_CELLS {
            // One gather buffer per rayon worker instead of one per
            // feature: the per-node column gather dominated allocator
            // traffic at depth.
            self.feature_pool[..k]
                .par_iter()
                .map_init(
                    || Vec::with_capacity(n),
                    |scratch, &feature| {
                        scan_feature(
                            self.x,
                            self.y,
                            indices,
                            feature,
                            node_impurity,
                            min_leaf,
                            scratch,
                        )
                    },
                )
                .reduce(|| None, pick_better)
        } else {
            let mut best: Option<BestSplit> = None;
            // Move the scratch buffer out to appease the borrow checker.
            let mut scratch = std::mem::take(&mut self.scratch);
            for slot in 0..k {
                let feature = self.feature_pool[slot];
                let candidate = scan_feature(
                    self.x,
                    self.y,
                    indices,
                    feature,
                    node_impurity,
                    min_leaf,
                    &mut scratch,
                );
                best = pick_better(best, candidate);
            }
            self.scratch = scratch;
            best
        }
    }
}

/// One histogram bin's accumulated node statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct HistCell {
    /// Sample count.
    pub(crate) n: u32,
    /// Σ target (gradient for the GBDT builder).
    pub(crate) sum: f64,
    /// Σ target² (hessian for the GBDT builder).
    pub(crate) sq: f64,
}

/// Subtracts `child`'s cells from `parent` in place: the sibling's
/// histogram is the parent's minus the scanned child's.
pub(crate) fn subtract_hist(parent: &mut [HistCell], child: &[HistCell]) {
    for (p, c) in parent.iter_mut().zip(child) {
        p.n -= c.n;
        p.sum -= c.sum;
        p.sq -= c.sq;
    }
}

/// Accumulates one feature's `(count, Σy, Σy²)` histogram over `indices`.
pub(crate) fn accumulate_feature(
    col: ColumnView<'_>,
    indices: &[usize],
    y: &[f64],
    cells: &mut [HistCell],
) {
    fn accumulate<C: Copy + Into<usize>>(
        codes: &[C],
        indices: &[usize],
        y: &[f64],
        cells: &mut [HistCell],
    ) {
        for &i in indices {
            let cell = &mut cells[codes[i].into()];
            let yv = y[i];
            cell.n += 1;
            cell.sum += yv;
            cell.sq += yv * yv;
        }
    }
    match col {
        ColumnView::U8(s) => accumulate(s, indices, y, cells),
        ColumnView::U16(s) => accumulate(s, indices, y, cells),
    }
}

/// Variance-criterion tree builder over a [`BinnedMatrix`].
///
/// Node histograms live in a flat `Vec<HistCell>` per node (feature `f`'s
/// bins at `offsets[f]..offsets[f + 1]`), recycled through `pool`. Three
/// regimes per node, cheapest applicable wins:
///
/// * rows < `small_cutoff` — gather `(code, y)` pairs per candidate
///   feature and sort by the integer code (mode "sorted codes");
/// * full candidate set ([`MaxFeatures::All`]) — whole-node histogram,
///   derived top-down by sibling subtraction where possible;
/// * sampled candidates — a fresh single-feature histogram per candidate
///   (subtraction is unsound here: the parent's histogram does not cover
///   a child's independently-sampled candidate set).
struct HistBuilder<'a> {
    binned: &'a BinnedMatrix,
    y: &'a [f64],
    config: &'a TreeConfig,
    rng: StdRng,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    n_total: f64,
    feature_pool: Vec<usize>,
    /// Per-feature start offsets into a flat whole-node histogram.
    offsets: Vec<usize>,
    /// Recycled whole-node histogram buffers.
    pool: Vec<Vec<HistCell>>,
    /// Below this row count a node uses the sorted-codes scan: a full
    /// histogram pays O(total bins) per node, which swamps tiny nodes.
    /// Set to `max_bins / 8` (min 16): sweeping the divisor over
    /// 2/4/8/16 on 2000×283 synthetic regression (release, single
    /// core), `/8` gave the fastest histogram fits at every depth
    /// tried (RF depth 10: 0.87 s vs 0.92–1.02 s; GBDT depth 5:
    /// 0.35 s vs 0.36–0.44 s).
    small_cutoff: usize,
    /// Reusable `(code, y)` buffer for the sorted-codes scan.
    scratch: Vec<(u32, f64)>,
    /// Reusable single-feature histogram for sampled-candidate nodes.
    feat_cells: Vec<HistCell>,
    /// Reusable overflow buffer for the stable partition.
    partition_buf: Vec<usize>,
}

impl<'a> HistBuilder<'a> {
    /// Grows the subtree over `indices`; `hist` is this node's whole-node
    /// histogram when the parent could derive it by subtraction.
    fn grow(&mut self, indices: &mut [usize], depth: usize, hist: Option<Vec<HistCell>>) -> u32 {
        let n = indices.len();
        let (mean, impurity) = mean_and_variance(self.y, indices);

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: LEAF,
            value: mean,
            cover: n as f64,
            impurity,
        });

        let depth_ok = self.config.max_depth.map_or(true, |d| depth < d);
        if !depth_ok || n < self.config.min_samples_split || impurity <= 1e-14 {
            if let Some(h) = hist {
                self.pool.push(h);
            }
            return node_id;
        }

        let k = self.config.max_features.resolve(self.binned.n_features());
        sample_features(&mut self.rng, &mut self.feature_pool, k);

        let subtraction_ok =
            n >= self.small_cutoff && matches!(self.config.max_features, MaxFeatures::All);
        let node_hist = if subtraction_ok {
            Some(match hist {
                Some(h) => h,
                None => {
                    let mut h = self.take_buffer();
                    self.build_full_hist(indices, &mut h);
                    h
                }
            })
        } else {
            if let Some(h) = hist {
                self.pool.push(h);
            }
            None
        };

        let split = self.best_split(indices, impurity, k, node_hist.as_deref());
        let Some(split) = split else {
            if let Some(h) = node_hist {
                self.pool.push(h);
            }
            return node_id;
        };

        // Weighted impurity decrease, sklearn-style: (n/N) * Δimpurity.
        let weighted_gain = (n as f64 / self.n_total) * split.gain;
        if weighted_gain <= self.config.min_impurity_decrease {
            if let Some(h) = node_hist {
                self.pool.push(h);
            }
            return node_id;
        }
        self.importances[split.feature] += weighted_gain;

        // Stable partition by bin code (row order within each side is
        // preserved, matching the exact builder's partition).
        let mid = {
            let col = self.binned.column(split.feature);
            let buf = &mut self.partition_buf;
            buf.clear();
            let mut write = 0;
            for read in 0..n {
                let i = indices[read];
                if col.get(i) <= split.left_bin {
                    indices[write] = i;
                    write += 1;
                } else {
                    buf.push(i);
                }
            }
            indices[write..].copy_from_slice(buf);
            write
        };
        debug_assert_eq!(mid, split.n_left);
        let (left_slice, right_slice) = indices.split_at_mut(mid);

        // Sibling subtraction: scan only the smaller child; the larger
        // child inherits parent − smaller, in place on the parent buffer.
        // Children at the depth cap become leaves, so skip the work.
        let child_depth_ok = self.config.max_depth.map_or(true, |d| depth + 1 < d);
        let mut left_hist = None;
        let mut right_hist = None;
        if let Some(mut parent) = node_hist {
            let left_is_small = left_slice.len() <= right_slice.len();
            let (small_slice, large_n) = if left_is_small {
                (&*left_slice, right_slice.len())
            } else {
                (&*right_slice, left_slice.len())
            };
            if child_depth_ok && large_n >= self.small_cutoff {
                let mut small = self.take_buffer();
                self.build_full_hist(small_slice, &mut small);
                subtract_hist(&mut parent, &small);
                let small = if small_slice.len() >= self.small_cutoff {
                    Some(small)
                } else {
                    self.pool.push(small);
                    None
                };
                if left_is_small {
                    left_hist = small;
                    right_hist = Some(parent);
                } else {
                    left_hist = Some(parent);
                    right_hist = small;
                }
            } else {
                self.pool.push(parent);
            }
        }

        let left_id = self.grow(left_slice, depth + 1, left_hist);
        let right_id = self.grow(right_slice, depth + 1, right_hist);
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left_id;
        node.right = right_id;
        node_id
    }

    /// Best candidate over the sampled features, using the cheapest scan
    /// available for this node (see the type docs).
    fn best_split(
        &mut self,
        indices: &[usize],
        node_impurity: f64,
        k: usize,
        node_hist: Option<&[HistCell]>,
    ) -> Option<BestSplit> {
        let n = indices.len();
        let min_leaf = self.config.min_samples_leaf;

        if let Some(cells) = node_hist {
            // Whole-node histogram: candidates are all features.
            let node_sum: f64 = indices.iter().map(|&i| self.y[i]).sum();
            let node_sq: f64 = indices.iter().map(|&i| self.y[i] * self.y[i]).sum();
            let mut best = None;
            for f in 0..self.binned.n_features() {
                let feature_cells = &cells[self.offsets[f]..self.offsets[f + 1]];
                best = pick_better(
                    best,
                    scan_hist_feature(
                        self.binned,
                        f,
                        feature_cells,
                        n,
                        node_sum,
                        node_sq,
                        node_impurity,
                        min_leaf,
                    ),
                );
            }
            best
        } else if n >= self.small_cutoff {
            // Sampled candidates: one fresh single-feature histogram each.
            let node_sum: f64 = indices.iter().map(|&i| self.y[i]).sum();
            let node_sq: f64 = indices.iter().map(|&i| self.y[i] * self.y[i]).sum();
            let mut feat = std::mem::take(&mut self.feat_cells);
            let mut best = None;
            for slot in 0..k {
                let f = self.feature_pool[slot];
                feat.clear();
                feat.resize(self.binned.n_bins(f), HistCell::default());
                accumulate_feature(self.binned.column(f), indices, self.y, &mut feat);
                best = pick_better(
                    best,
                    scan_hist_feature(
                        self.binned,
                        f,
                        &feat,
                        n,
                        node_sum,
                        node_sq,
                        node_impurity,
                        min_leaf,
                    ),
                );
            }
            self.feat_cells = feat;
            best
        } else {
            // Small node: integer-key sort over codes per candidate.
            let node_sum: f64 = indices.iter().map(|&i| self.y[i]).sum();
            let node_sq: f64 = indices.iter().map(|&i| self.y[i] * self.y[i]).sum();
            let mut scratch = std::mem::take(&mut self.scratch);
            let mut best = None;
            for slot in 0..k {
                let f = self.feature_pool[slot];
                best = pick_better(
                    best,
                    scan_sorted_codes(
                        self.binned,
                        f,
                        indices,
                        self.y,
                        node_sum,
                        node_sq,
                        node_impurity,
                        min_leaf,
                        &mut scratch,
                    ),
                );
            }
            self.scratch = scratch;
            best
        }
    }

    /// A zeroed whole-node histogram buffer, recycled where possible.
    fn take_buffer(&mut self) -> Vec<HistCell> {
        let total = *self.offsets.last().unwrap();
        match self.pool.pop() {
            Some(mut h) => {
                h.fill(HistCell::default());
                h
            }
            None => vec![HistCell::default(); total],
        }
    }

    /// Accumulates every feature's histogram for `indices`, rayon-fanned
    /// across features for large nodes.
    fn build_full_hist(&self, indices: &[usize], cells: &mut [HistCell]) {
        let n_features = self.binned.n_features();
        if n_features * indices.len() >= PARALLEL_SPLIT_CELLS {
            let mut slices = Vec::with_capacity(n_features);
            let mut rest = cells;
            for f in 0..n_features {
                let width = self.offsets[f + 1] - self.offsets[f];
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(width);
                slices.push((f, head));
                rest = tail;
            }
            slices.into_par_iter().for_each(|(f, feature_cells)| {
                accumulate_feature(self.binned.column(f), indices, self.y, feature_cells);
            });
        } else {
            for f in 0..n_features {
                accumulate_feature(
                    self.binned.column(f),
                    indices,
                    self.y,
                    &mut cells[self.offsets[f]..self.offsets[f + 1]],
                );
            }
        }
    }
}

/// Scans one feature's node histogram for the best variance-reducing bin
/// boundary. Only boundaries between bins that are non-empty *in this
/// node* are candidates, mirroring the exact scan's distinct-value
/// boundaries — that is what makes the two builders agree bit for bit
/// when every bin holds a single distinct value.
#[allow(clippy::too_many_arguments)]
fn scan_hist_feature(
    binned: &BinnedMatrix,
    feature: usize,
    cells: &[HistCell],
    node_n: usize,
    node_sum: f64,
    node_sq: f64,
    node_impurity: f64,
    min_leaf: usize,
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    let mut left_n = 0usize;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    let mut prev: Option<usize> = None;
    for (b, cell) in cells.iter().enumerate() {
        if cell.n == 0 {
            continue;
        }
        if let Some(pb) = prev {
            let n_left = left_n;
            let n_right = node_n - n_left;
            if n_left >= min_leaf && n_right >= min_leaf {
                let lmean = left_sum / n_left as f64;
                let rsum = node_sum - left_sum;
                let rmean = rsum / n_right as f64;
                let limp = left_sq / n_left as f64 - lmean * lmean;
                let rimp = (node_sq - left_sq) / n_right as f64 - rmean * rmean;
                let gain = node_impurity
                    - (n_left as f64 / node_n as f64) * limp.max(0.0)
                    - (n_right as f64 / node_n as f64) * rimp.max(0.0);
                if gain > best.as_ref().map_or(1e-14, |bs| bs.gain) {
                    best = Some(BestSplit {
                        feature,
                        threshold: binned.threshold_between(feature, pb, b),
                        gain,
                        n_left,
                        left_bin: pb,
                    });
                }
            }
        }
        left_n += cell.n as usize;
        left_sum += cell.sum;
        left_sq += cell.sq;
        prev = Some(b);
    }
    best
}

/// Small-node scan: gather `(code, y)` pairs and sort by the integer
/// code — the cheap-comparison twin of the exact builder's float sort.
/// `total_sum`/`total_sq` are the node-level Σy and Σy², computed once by
/// the caller rather than re-reduced for every candidate feature.
#[allow(clippy::too_many_arguments)]
fn scan_sorted_codes(
    binned: &BinnedMatrix,
    feature: usize,
    indices: &[usize],
    y: &[f64],
    total_sum: f64,
    total_sq: f64,
    node_impurity: f64,
    min_leaf: usize,
    scratch: &mut Vec<(u32, f64)>,
) -> Option<BestSplit> {
    let n = indices.len();
    scratch.clear();
    match binned.column(feature) {
        ColumnView::U8(s) => scratch.extend(indices.iter().map(|&i| (s[i] as u32, y[i]))),
        ColumnView::U16(s) => scratch.extend(indices.iter().map(|&i| (s[i] as u32, y[i]))),
    }
    scratch.sort_unstable_by_key(|p| p.0);

    let mut best: Option<BestSplit> = None;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    for i in 0..n - 1 {
        let (code, yv) = scratch[i];
        left_sum += yv;
        left_sq += yv * yv;
        let n_left = i + 1;
        let n_right = n - n_left;
        if n_left < min_leaf || n_right < min_leaf {
            continue;
        }
        let next_code = scratch[i + 1].0;
        if next_code <= code {
            continue; // no boundary inside a bin
        }
        let lmean = left_sum / n_left as f64;
        let rsum = total_sum - left_sum;
        let rmean = rsum / n_right as f64;
        let limp = left_sq / n_left as f64 - lmean * lmean;
        let rimp = (total_sq - left_sq) / n_right as f64 - rmean * rmean;
        let gain = node_impurity
            - (n_left as f64 / n as f64) * limp.max(0.0)
            - (n_right as f64 / n as f64) * rimp.max(0.0);
        if gain > best.as_ref().map_or(1e-14, |bs| bs.gain) {
            best = Some(BestSplit {
                feature,
                threshold: binned.threshold_between(feature, code as usize, next_code as usize),
                gain,
                n_left,
                left_bin: code as usize,
            });
        }
    }
    best
}

/// Keeps the better of two candidate splits: higher gain wins, exact ties
/// break toward the lower feature index.
fn pick_better(a: Option<BestSplit>, b: Option<BestSplit>) -> Option<BestSplit> {
    match (a, b) {
        (None, x) => x,
        (x, None) => x,
        (Some(x), Some(y)) => {
            if y.gain > x.gain || (y.gain == x.gain && y.feature < x.feature) {
                Some(y)
            } else {
                Some(x)
            }
        }
    }
}

/// Scans one feature for the best variance-reducing threshold.
fn scan_feature(
    x: &Matrix,
    y: &[f64],
    indices: &[usize],
    feature: usize,
    node_impurity: f64,
    min_leaf: usize,
    scratch: &mut Vec<(f64, f64)>,
) -> Option<BestSplit> {
    let n = indices.len();
    scratch.clear();
    scratch.extend(indices.iter().map(|&i| (x.get(i, feature), y[i])));
    scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN rejected at fit entry"));

    let total_sum: f64 = scratch.iter().map(|p| p.1).sum();
    let total_sq: f64 = scratch.iter().map(|p| p.1 * p.1).sum();
    let mut best: Option<BestSplit> = None;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    for i in 0..n - 1 {
        let (xv, yv) = scratch[i];
        left_sum += yv;
        left_sq += yv * yv;
        let n_left = i + 1;
        let n_right = n - n_left;
        if n_left < min_leaf || n_right < min_leaf {
            continue;
        }
        let next_x = scratch[i + 1].0;
        if next_x <= xv {
            continue; // no threshold separates equal values
        }
        let lmean = left_sum / n_left as f64;
        let rsum = total_sum - left_sum;
        let rmean = rsum / n_right as f64;
        let limp = left_sq / n_left as f64 - lmean * lmean;
        let rimp = (total_sq - left_sq) / n_right as f64 - rmean * rmean;
        let gain = node_impurity
            - (n_left as f64 / n as f64) * limp.max(0.0)
            - (n_right as f64 / n as f64) * rimp.max(0.0);
        if gain > best.as_ref().map_or(1e-14, |b| b.gain) {
            // Midpoint threshold; guard against midpoint rounding to
            // the upper value on adjacent floats.
            let mut threshold = 0.5 * (xv + next_x);
            if threshold >= next_x {
                threshold = xv;
            }
            best = Some(BestSplit {
                feature,
                threshold,
                gain,
                n_left,
                left_bin: 0,
            });
        }
    }
    best
}

/// Stable partition: moves elements satisfying `pred` to the front,
/// returning the boundary. Order within each side is preserved so the
/// builder stays deterministic.
fn partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let kept: Vec<T> = slice.iter().copied().filter(|t| pred(t)).collect();
    let rest: Vec<T> = slice.iter().copied().filter(|t| !pred(t)).collect();
    let mid = kept.len();
    slice[..mid].copy_from_slice(&kept);
    slice[mid..].copy_from_slice(&rest);
    mid
}

fn mean_and_variance(y: &[f64], indices: &[usize]) -> (f64, f64) {
    let n = indices.len() as f64;
    let sum: f64 = indices.iter().map(|&i| y[i]).sum();
    let mean = sum / n;
    let var = indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / n;
    (mean, var.max(0.0))
}

/// Small extension over `StdRng` for bounded draws without an extra dep.
trait RngRange {
    fn next_u64_range(&mut self, bound: usize) -> u64;
}

impl RngRange for StdRng {
    fn next_u64_range(&mut self, bound: usize) -> u64 {
        use rand::Rng;
        if bound <= 1 {
            0
        } else {
            self.gen_range(0..bound as u64)
        }
    }
}

/// Draws `n` bootstrap sample indices from `0..n` (with replacement).
pub fn bootstrap_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    use rand::Rng;
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Shuffles `0..n` and returns the permutation.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 0 for x < 5, 10 for x >= 5: one split suffices.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_a_step_function_with_one_split() {
        let (x, y) = step_data();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        assert_eq!(fit.tree.depth(), 1);
        assert_eq!(fit.tree.n_leaves(), 2);
        assert_eq!(fit.predict_row(&[2.0]), 0.0);
        assert_eq!(fit.predict_row(&[7.0]), 10.0);
        // All importance on the single informative feature.
        assert!((fit.feature_importances[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolates_piecewise_constant() {
        // Deep tree memorizes distinct points exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        for i in 0..20 {
            assert_eq!(fit.predict_row(&[i as f64]), (i * i) as f64);
        }
    }

    #[test]
    fn max_depth_limits_growth() {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig {
            max_depth: Some(2),
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        assert!(fit.tree.depth() <= 2);
        assert!(fit.tree.n_leaves() <= 4);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = step_data();
        let fit = TreeConfig {
            min_samples_leaf: 3,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        for node in &fit.tree.nodes {
            if node.is_leaf() {
                assert!(node.cover >= 3.0, "leaf cover {}", node.cover);
            }
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &[4.0; 6], 0).unwrap();
        assert_eq!(fit.tree.nodes.len(), 1);
        assert_eq!(fit.predict_row(&[100.0]), 4.0);
        assert!(fit.feature_importances.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn importance_favors_informative_feature() {
        // Feature 0 carries the signal; feature 1 is a constant.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 5.0 + i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        assert!(fit.feature_importances[0] > 0.99);
        assert!(fit.feature_importances[1] < 0.01);
    }

    #[test]
    fn expected_value_matches_training_mean() {
        let (x, y) = step_data();
        let fit = TreeConfig::default().fit(&x, &y, 0).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((fit.tree.expected_value() - mean).abs() < 1e-9);
    }

    #[test]
    fn validates_config() {
        let (x, y) = step_data();
        let bad = TreeConfig {
            min_samples_split: 1,
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, 0).is_err());
        let bad = TreeConfig {
            min_samples_leaf: 0,
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, 0).is_err());
        let bad = TreeConfig {
            max_features: MaxFeatures::Fraction(0.0),
            ..Default::default()
        };
        assert!(bad.fit(&x, &y, 0).is_err());
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Fraction(0.3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(0).resolve(10), 1);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let cfg = TreeConfig {
            max_features: MaxFeatures::Count(2),
            ..Default::default()
        };
        let a = cfg.fit(&x, &y, 7).unwrap();
        let b = cfg.fit(&x, &y, 7).unwrap();
        assert_eq!(a.tree.nodes, b.tree.nodes);
    }

    #[test]
    fn partition_is_stable() {
        let mut v = vec![5, 1, 4, 2, 3];
        let mid = partition(&mut v, |&x| x % 2 == 0);
        assert_eq!(mid, 2);
        assert_eq!(v, vec![4, 2, 5, 1, 3]);
    }

    /// Integer-valued multi-feature data whose distinct counts fit a
    /// 256-bin budget, so exact and histogram search must agree bit for
    /// bit (integer targets keep every f64 sum exact).
    fn parity_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..4)
                    .map(|_| (rng.next_u64_range(40) as f64) - 20.0)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r[0] * 2.0 + r[1] * r[1] / 4.0 + (rng.next_u64_range(9) as f64) - 4.0)
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn exact_and_hist(cfg: &TreeConfig) -> (TreeConfig, TreeConfig) {
        let exact = TreeConfig {
            split_method: SplitMethod::Exact,
            ..cfg.clone()
        };
        let hist = TreeConfig {
            split_method: SplitMethod::Histogram {
                max_bins: DEFAULT_MAX_BINS,
            },
            ..cfg.clone()
        };
        (exact, hist)
    }

    #[test]
    fn histogram_matches_exact_bit_for_bit_on_full_features() {
        let (x, y) = parity_data(300, 3);
        let (exact, hist) = exact_and_hist(&TreeConfig::default());
        let a = exact.fit(&x, &y, 0).unwrap();
        let b = hist.fit(&x, &y, 0).unwrap();
        assert_eq!(a.tree.nodes, b.tree.nodes);
        assert_eq!(a.feature_importances, b.feature_importances);
    }

    #[test]
    fn histogram_matches_exact_with_sampled_features() {
        // Count(2) of 4 exercises the per-node feature sampling: both
        // builders must consume the RNG identically to pick the same
        // candidates at every node.
        let (x, y) = parity_data(200, 11);
        let (exact, hist) = exact_and_hist(&TreeConfig {
            max_features: MaxFeatures::Count(2),
            min_samples_leaf: 2,
            ..Default::default()
        });
        for seed in [0, 1, 2] {
            let a = exact.fit(&x, &y, seed).unwrap();
            let b = hist.fit(&x, &y, seed).unwrap();
            assert_eq!(a.tree.nodes, b.tree.nodes, "seed {seed}");
        }
    }

    #[test]
    fn histogram_matches_exact_on_bootstrap_indices() {
        // Repeated indices (bootstrap draws) hit the small-node sorted-
        // codes path with duplicate rows on both sides of cuts.
        let (x, y) = parity_data(150, 29);
        let mut rng = StdRng::seed_from_u64(5);
        let indices = bootstrap_indices(x.n_rows(), &mut rng);
        let (exact, hist) = exact_and_hist(&TreeConfig {
            max_depth: Some(6),
            ..Default::default()
        });
        let a = exact.fit_indices(&x, &y, &indices, 1).unwrap();
        let b = hist.fit_indices(&x, &y, &indices, 1).unwrap();
        assert_eq!(a.tree.nodes, b.tree.nodes);
    }

    #[test]
    fn quantile_compression_stays_statistically_close() {
        // More distinct values than bins: trees may differ (exact search
        // can overfit finer), but held-out error must stay in the same
        // ballpark — binning acts as mild regularization, not damage.
        let mut rng = StdRng::seed_from_u64(17);
        let sample = |rng: &mut StdRng, n: usize| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..3)
                        .map(|_| rng.next_u64_range(1_000_000) as f64 / 1000.0)
                        .collect()
                })
                .collect();
            let y: Vec<f64> = rows
                .iter()
                .map(|r| (r[0] / 100.0).sin() * 50.0 + r[1])
                .collect();
            (Matrix::from_rows(&rows).unwrap(), y)
        };
        let (x, y) = sample(&mut rng, 400);
        let (xt, yt) = sample(&mut rng, 200);
        let base = TreeConfig {
            max_depth: Some(6),
            ..Default::default()
        };
        let exact = TreeConfig {
            split_method: SplitMethod::Exact,
            ..base.clone()
        };
        let hist = TreeConfig {
            split_method: SplitMethod::Histogram { max_bins: 64 },
            ..base
        };
        let test_mse = |fit: &FittedTree| {
            yt.iter()
                .enumerate()
                .map(|(r, t)| (fit.predict_row(xt.row(r)) - t).powi(2))
                .sum::<f64>()
                / yt.len() as f64
        };
        let me = test_mse(&exact.fit(&x, &y, 0).unwrap());
        let mh = test_mse(&hist.fit(&x, &y, 0).unwrap());
        assert!(mh <= me * 1.15 + 1e-9, "hist {mh} vs exact {me}");
    }

    #[test]
    fn split_method_labels_and_parsing_round_trip() {
        assert_eq!(SplitMethod::Exact.label(), "exact");
        assert_eq!(SplitMethod::Histogram { max_bins: 64 }.label(), "hist:64");
        for m in [
            SplitMethod::Exact,
            SplitMethod::default(),
            SplitMethod::Histogram { max_bins: 32 },
        ] {
            assert_eq!(SplitMethod::parse(&m.label()), Some(m));
        }
        assert_eq!(
            SplitMethod::parse("hist"),
            Some(SplitMethod::Histogram {
                max_bins: DEFAULT_MAX_BINS
            })
        );
        assert_eq!(SplitMethod::parse("bogus"), None);
        assert_eq!(SplitMethod::parse("hist:zero"), None);
    }

    #[test]
    fn validates_histogram_bin_budget() {
        let (x, y) = step_data();
        for max_bins in [0, 1, 70_000] {
            let bad = TreeConfig {
                split_method: SplitMethod::Histogram { max_bins },
                ..Default::default()
            };
            assert!(bad.fit(&x, &y, 0).is_err(), "max_bins {max_bins}");
        }
    }
}
