//! Log-linear histogram bucket layout (HDR-style) shared by the
//! sharded telemetry cells and the snapshot quantile math.
//!
//! The original registry binned durations into decades (1µs → 10µs →
//! 100µs → …), which cannot tell a 300µs request from a 900µs one —
//! both land in the `(100, 1000]` bucket and any quantile inside it is
//! a factor-of-10 guess. This layout keeps the O(1) index computation
//! but subdivides every power of two into [`SUB_BUCKETS`] linear
//! sub-buckets:
//!
//! * values `0..4` µs get one bucket each (exact);
//! * a value `v >= 4` lands in the bucket addressed by its binary
//!   exponent `e = floor(log2 v)` and the top [`SUB_BITS`] mantissa
//!   bits, so each bucket spans `2^(e-2)` µs — at most 1/4 of its
//!   lower bound;
//! * finite buckets cover `[0, 2^27)` µs (≈ 134 s); anything longer
//!   lands in one overflow bucket.
//!
//! The payoff is a hard error bound: a quantile estimated from the
//! histogram is within [`QUANTILE_REL_ERROR`] (25%) *relative* error of
//! the exact sample quantile, or within 1µs absolute for values below
//! 4µs (see [`quantile_error_bound`]). The decade layout's bound was an
//! order of magnitude.

/// Mantissa bits kept per bucket: 2 bits → 4 sub-buckets per power of 2.
pub const SUB_BITS: u32 = 2;

/// Linear sub-buckets per power of two (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Exponent (power of two, in µs) where the finite range ends: buckets
/// cover `[0, 2^MAX_EXP)` µs ≈ 134 s, well past the "~100s" ceiling any
/// single request or rollover should ever see.
pub const MAX_EXP: u32 = 27;

/// Finite buckets plus the overflow catch-all.
pub const N_BUCKETS: usize = (MAX_EXP as usize - 1) * SUB_BUCKETS + 1;

/// Guaranteed relative error of histogram quantiles for values >= 4µs
/// inside the finite range: bucket width is at most 1/4 of the bucket's
/// lower bound.
pub const QUANTILE_REL_ERROR: f64 = 0.25;

/// The bucket index a duration of `micros` lands in.
#[inline]
pub fn bucket_index(micros: u64) -> usize {
    if micros < SUB_BUCKETS as u64 {
        return micros as usize;
    }
    let exp = 63 - micros.leading_zeros(); // >= SUB_BITS
    if exp >= MAX_EXP {
        return N_BUCKETS - 1;
    }
    let sub = ((micros >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (exp as usize - 1) * SUB_BUCKETS + sub
}

/// Inclusive upper bound (µs) of finite bucket `index`; `None` for the
/// overflow bucket.
pub fn bucket_le_micros(index: usize) -> Option<u64> {
    if index >= N_BUCKETS - 1 {
        return None;
    }
    if index < SUB_BUCKETS {
        return Some(index as u64);
    }
    let exp = (index / SUB_BUCKETS + 1) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    Some((1u64 << exp) + (sub + 1) * width - 1)
}

/// All finite bucket bounds, smallest first (the overflow bucket is
/// implied). Useful for rendering and tests.
pub fn bucket_bounds_micros() -> Vec<u64> {
    (0..N_BUCKETS - 1)
        .map(|i| bucket_le_micros(i).expect("finite bucket"))
        .collect()
}

/// The worst-case absolute error of a quantile estimate whose exact
/// value is `exact_micros`: `max(QUANTILE_REL_ERROR × exact, 1µs)`.
/// The 1µs floor covers the sub-4µs buckets, where bucket width is 1µs.
pub fn quantile_error_bound(exact_micros: f64) -> f64 {
    (QUANTILE_REL_ERROR * exact_micros).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_contiguous_and_monotonic() {
        // Every consecutive bound pair maps to consecutive buckets.
        let bounds = bucket_bounds_micros();
        assert_eq!(bounds.len(), N_BUCKETS - 1);
        for (i, &le) in bounds.iter().enumerate() {
            assert_eq!(bucket_index(le), i, "bound {le} belongs to bucket {i}");
            assert_eq!(bucket_index(le + 1), i + 1, "just over {le}");
        }
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_le_micros(v as usize), Some(v));
        }
    }

    #[test]
    fn sub_decade_values_are_distinguishable() {
        // The motivating case: 300µs and 900µs shared one decade bucket;
        // now they are several buckets apart.
        assert_ne!(bucket_index(300), bucket_index(900));
        assert_ne!(bucket_index(300_000), bucket_index(900_000));
    }

    #[test]
    fn bucket_width_is_at_most_a_quarter_of_the_lower_bound() {
        for i in SUB_BUCKETS..N_BUCKETS - 1 {
            let hi = bucket_le_micros(i).unwrap();
            let lo = bucket_le_micros(i - 1).unwrap() + 1;
            let width = hi - lo + 1;
            assert!(
                (width as f64) <= QUANTILE_REL_ERROR * lo as f64,
                "bucket {i}: [{lo}, {hi}] width {width}"
            );
        }
    }

    #[test]
    fn range_covers_one_microsecond_to_beyond_100_seconds() {
        let last_finite = bucket_le_micros(N_BUCKETS - 2).unwrap();
        assert!(
            last_finite >= 100_000_000,
            "finite range ends at {last_finite}"
        );
        assert_eq!(last_finite, (1u64 << MAX_EXP) - 1);
        assert_eq!(bucket_index(last_finite), N_BUCKETS - 2);
        assert_eq!(bucket_index(1u64 << MAX_EXP), N_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_le_micros(N_BUCKETS - 1), None);
    }
}
