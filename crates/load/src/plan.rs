//! Deterministic request plans: what to send, in what order.
//!
//! Load numbers are only comparable across runs — and across PRs in
//! CI — when both sides replayed the *same* request sequence. A
//! [`LoadPlan`] pre-renders every template to wire bytes once and
//! fixes the request order with a seeded [`SplitMix64`] draw, so the
//! hot loop does zero allocation and zero RNG work: same templates +
//! same seed ⇒ byte-identical replay on every machine.

/// One request shape: method, path, optional body. Templates are
/// rendered to HTTP/1.1 wire bytes once, at plan build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTemplate {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Absolute path, e.g. `/predict`.
    pub path: String,
    /// Request body; empty means no body (and no `Content-Length`).
    pub body: String,
}

impl RequestTemplate {
    /// A body-less `GET`.
    pub fn get(path: &str) -> RequestTemplate {
        RequestTemplate {
            method: "GET".to_string(),
            path: path.to_string(),
            body: String::new(),
        }
    }

    /// A `POST` with a JSON body.
    pub fn post(path: &str, body: &str) -> RequestTemplate {
        RequestTemplate {
            method: "POST".to_string(),
            path: path.to_string(),
            body: body.to_string(),
        }
    }

    /// The HTTP/1.1 wire form. No `Connection` header: HTTP/1.1
    /// defaults to keep-alive, which is the whole point of the
    /// harness — connections persist across the replay.
    pub fn wire_bytes(&self) -> Vec<u8> {
        if self.body.is_empty() {
            format!(
                "{} {} HTTP/1.1\r\nHost: c100-load\r\n\r\n",
                self.method, self.path
            )
            .into_bytes()
        } else {
            format!(
                "{} {} HTTP/1.1\r\nHost: c100-load\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{}",
                self.method,
                self.path,
                self.body.len(),
                self.body
            )
            .into_bytes()
        }
    }
}

/// SplitMix64: a tiny, high-quality, seedable generator — the same
/// sequence on every platform, no dependency on `rand`.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator whose whole state is `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A fully materialised replay: `total` requests drawn from a template
/// set in a seed-fixed order, each pre-rendered to wire bytes.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    templates: Vec<Vec<u8>>,
    order: Vec<u32>,
}

impl LoadPlan {
    /// Draws `total` requests uniformly from `templates` with a
    /// SplitMix64 stream seeded by `seed`. Deterministic: the i-th
    /// request is the same template on every run and every machine.
    pub fn replay(templates: &[RequestTemplate], total: usize, seed: u64) -> LoadPlan {
        assert!(
            !templates.is_empty(),
            "a load plan needs at least one template"
        );
        assert!(
            templates.len() <= u32::MAX as usize,
            "more templates than a u32 index can address"
        );
        let mut rng = SplitMix64::new(seed);
        let order = (0..total)
            .map(|_| (rng.next_u64() % templates.len() as u64) as u32)
            .collect();
        LoadPlan {
            templates: templates.iter().map(RequestTemplate::wire_bytes).collect(),
            order,
        }
    }

    /// Number of requests in the replay.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the plan holds no requests.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of distinct templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// The wire bytes of the i-th request.
    pub fn wire(&self, i: usize) -> &[u8] {
        &self.templates[self.order[i] as usize]
    }

    /// Which template the i-th request renders.
    pub fn template_of(&self, i: usize) -> usize {
        self.order[i] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn templates() -> Vec<RequestTemplate> {
        vec![
            RequestTemplate::get("/healthz"),
            RequestTemplate::post("/predict", "{\"scenario\":\"2019_7\",\"rows\":[[1,2]]}"),
        ]
    }

    #[test]
    fn same_seed_replays_the_same_sequence() {
        let a = LoadPlan::replay(&templates(), 64, 7);
        let b = LoadPlan::replay(&templates(), 64, 7);
        for i in 0..a.len() {
            assert_eq!(a.wire(i), b.wire(i), "request {i} diverged");
        }
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let a = LoadPlan::replay(&templates(), 256, 1);
        let b = LoadPlan::replay(&templates(), 256, 2);
        let diverges = (0..a.len()).any(|i| a.template_of(i) != b.template_of(i));
        assert!(diverges, "256 draws from 2 templates agreed on every index");
    }

    #[test]
    fn wire_bytes_frame_the_body_and_omit_connection() {
        let wire = RequestTemplate::post("/predict", "{\"rows\":[[1]]}").wire_bytes();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("POST /predict HTTP/1.1\r\n"), "{text:?}");
        assert!(text.contains("Content-Length: 14\r\n"), "{text:?}");
        assert!(text.ends_with("\r\n\r\n{\"rows\":[[1]]}"), "{text:?}");
        // Persistence rides on the HTTP/1.1 default; no Connection header.
        assert!(!text.contains("Connection:"), "{text:?}");

        let get = String::from_utf8(RequestTemplate::get("/healthz").wire_bytes()).unwrap();
        assert!(get.ends_with("\r\n\r\n"), "{get:?}");
        assert!(!get.contains("Content-Length"), "{get:?}");
    }

    #[test]
    fn a_draw_covers_both_templates() {
        let plan = LoadPlan::replay(&templates(), 128, 42);
        let gets = (0..plan.len())
            .filter(|&i| plan.template_of(i) == 0)
            .count();
        assert!(gets > 0 && gets < 128, "degenerate draw: {gets}/128 GETs");
    }
}
