//! Per-category contribution factors (Figures 3 and 4).
//!
//! The paper defines a category's *contribution factor* for a scenario as
//! the number of its features in the final feature vector divided by its
//! number of candidate features before selection.

use std::collections::HashMap;

use c100_synth::DataCategory;

use crate::scenario::ScenarioData;

/// Contribution of one category in one scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CategoryContribution {
    /// Display name of the category.
    pub category: String,
    /// Features of the category in the final vector.
    pub selected: usize,
    /// Candidate features of the category before selection.
    pub candidates: usize,
    /// `selected / candidates` (0.0 when the category has no candidates).
    pub factor: f64,
}

/// Computes contribution factors of every category for a final feature
/// vector selected from `scenario`.
pub fn contribution_factors(
    scenario: &ScenarioData,
    final_features: &[String],
) -> Vec<CategoryContribution> {
    let candidates = scenario.category_counts();
    let mut selected: HashMap<DataCategory, usize> = HashMap::new();
    for name in final_features {
        if let Some(cat) = scenario.categories.get(name) {
            *selected.entry(*cat).or_insert(0) += 1;
        }
    }
    DataCategory::ALL
        .iter()
        .map(|cat| {
            let n_candidates = candidates.get(cat).copied().unwrap_or(0);
            let n_selected = selected.get(cat).copied().unwrap_or(0);
            CategoryContribution {
                category: cat.display_name().to_string(),
                selected: n_selected,
                candidates: n_candidates,
                factor: if n_candidates > 0 {
                    n_selected as f64 / n_candidates as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::assemble;
    use crate::scenario::{build_scenario, Period};
    use c100_synth::{generate, SynthConfig};

    #[test]
    fn factors_are_ratios_in_unit_interval() {
        let master = assemble(&generate(&SynthConfig::small(121))).unwrap();
        let s = build_scenario(&master, Period::Y2019, 7).unwrap();
        // Fake final vector: the first 50 features.
        let final_features: Vec<String> = s.feature_names.iter().take(50).cloned().collect();
        let contributions = contribution_factors(&s, &final_features);
        assert_eq!(contributions.len(), DataCategory::ALL.len());
        let mut total_selected = 0;
        for c in &contributions {
            assert!(c.factor >= 0.0 && c.factor <= 1.0, "{c:?}");
            assert!(c.selected <= c.candidates, "{c:?}");
            total_selected += c.selected;
        }
        assert_eq!(total_selected, 50);
    }

    #[test]
    fn empty_category_gets_zero_factor() {
        let master = assemble(&generate(&SynthConfig::small(122))).unwrap();
        let s = build_scenario(&master, Period::Y2019, 1).unwrap();
        let contributions = contribution_factors(&s, &[]);
        for c in contributions {
            assert_eq!(c.selected, 0);
            assert_eq!(c.factor, 0.0);
        }
    }
}
