//! Hierarchical span tracing with explicit cross-thread handoff.
//!
//! The event stream ([`crate::Event`]) answers *what happened*; spans
//! answer *where the time went*. A [`Tracer`] records wall-clock
//! intervals as a tree: every span has an id, an optional parent, the
//! thread it ran on, and a start/duration pair measured against the
//! tracer's epoch. Parent/child links cross rayon worker threads by
//! **explicit handoff** — a [`SpanGuard`] hands out a [`TraceCtx`]
//! (`Copy + Send + Sync`) that closures capture by value; there is no
//! thread-local ambient context to lose track of under work stealing.
//!
//! ```
//! use c100_obs::trace::{TraceCtx, Tracer};
//!
//! let tracer = Tracer::new();
//! {
//!     let scenario = tracer.span("2019_7", "scenario");
//!     let ctx = scenario.ctx(); // Copy — move it into worker closures
//!     std::thread::scope(|s| {
//!         s.spawn(move || {
//!             let _child = ctx.span("tree_fit"); // parented across threads
//!         });
//!     });
//! }
//! let spans = tracer.snapshot();
//! assert_eq!(spans.len(), 2);
//! let child = spans.iter().find(|s| s.name == "tree_fit").unwrap();
//! let root = spans.iter().find(|s| s.name == "scenario").unwrap();
//! assert_eq!(child.parent, Some(root.id));
//! ```
//!
//! Disabled tracing ([`TraceCtx::disabled`], the default everywhere) is
//! free: no clock reads, no atomics, no allocation. The whole timeline
//! exports as Chrome Trace Event JSON ([`Tracer::chrome_trace_json`])
//! loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//! and aggregates into a self-time profile ([`Tracer::profile`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::write_escaped;
use crate::profile::ProfileReport;

/// Identifier of one recorded span, unique within its [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One completed span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the tracer.
    pub id: SpanId,
    /// Parent span, if any.
    pub parent: Option<SpanId>,
    /// Static span name (`"fra_iteration"`, `"tree_fit"`, …).
    pub name: &'static str,
    /// Scenario id, carried by root spans opened via [`Tracer::span`];
    /// child spans inherit it through the parent chain at profile time.
    pub scenario: Option<String>,
    /// Small dense thread id, assigned in first-seen order (1-based).
    pub tid: u64,
    /// Start offset from the tracer epoch, in microseconds.
    pub start_micros: u64,
    /// Wall-clock duration in microseconds.
    pub dur_micros: u64,
}

impl SpanRecord {
    /// End offset from the tracer epoch, in microseconds.
    pub fn end_micros(&self) -> u64 {
        self.start_micros.saturating_add(self.dur_micros)
    }
}

/// Collects span intervals for one run.
///
/// Thread-safe: guards record into an internal mutex on drop, and the
/// open path is an atomic id bump plus one short lock for the thread-id
/// table. The per-span cost is sub-microsecond (see the `obs` bench).
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    threads: Mutex<HashMap<ThreadId, u64>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; its epoch (timestamp zero) is the construction
    /// instant.
    pub fn new() -> Tracer {
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            threads: Mutex::new(HashMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the tracer epoch.
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Dense 1-based id for the calling thread.
    fn tid(&self) -> u64 {
        let mut threads = self.threads.lock().expect("tracer thread table poisoned");
        let next = threads.len() as u64 + 1;
        *threads.entry(std::thread::current().id()).or_insert(next)
    }

    /// Opens a root span tagged with a scenario id. Children created
    /// through the guard's [`SpanGuard::ctx`] inherit the scenario.
    pub fn span(&self, scenario: &str, name: &'static str) -> SpanGuard<'_> {
        self.open(None, name, Some(scenario.to_string()))
    }

    /// The root [`TraceCtx`] for this tracer (no parent span yet).
    pub fn ctx(&self) -> TraceCtx<'_> {
        TraceCtx {
            tracer: Some(self),
            parent: None,
        }
    }

    fn open(
        &self,
        parent: Option<SpanId>,
        name: &'static str,
        scenario: Option<String>,
    ) -> SpanGuard<'_> {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        SpanGuard {
            tracer: Some(self),
            id,
            parent,
            name,
            scenario,
            tid: self.tid(),
            start_micros: self.now_micros(),
        }
    }

    fn record(&self, span: SpanRecord) {
        self.spans.lock().expect("tracer spans poisoned").push(span);
    }

    /// A copy of every completed span, in completion order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("tracer spans poisoned").clone()
    }

    /// Number of completed spans.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("tracer spans poisoned").len()
    }

    /// Whether no span has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregates the completed spans into a per-scenario
    /// self-time/total-time/call-count profile.
    pub fn profile(&self) -> ProfileReport {
        ProfileReport::from_spans(&self.snapshot())
    }

    /// Exports the timeline as Chrome Trace Event JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in
    /// `chrome://tracing` and Perfetto.
    ///
    /// Every span becomes one complete (`"ph":"X"`) event with `ts` and
    /// `dur` in microseconds; span ids and parent links ride along in
    /// `args` so the hierarchy survives even where the viewer's own
    /// stack inference (same-thread nesting) cannot reconstruct it.
    /// Thread-name metadata events label each worker.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"worker-{tid}\"}}}}"
            ));
        }
        for s in &spans {
            sep(&mut out);
            out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&s.tid.to_string());
            out.push_str(",\"name\":");
            write_escaped(&mut out, s.name);
            out.push_str(",\"cat\":\"c100\",\"ts\":");
            out.push_str(&s.start_micros.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.dur_micros.to_string());
            out.push_str(",\"args\":{\"id\":");
            out.push_str(&s.id.0.to_string());
            if let Some(parent) = s.parent {
                out.push_str(",\"parent\":");
                out.push_str(&parent.0.to_string());
            }
            if let Some(scenario) = &s.scenario {
                out.push_str(",\"scenario\":");
                write_escaped(&mut out, scenario);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// A copyable handle for opening spans: a tracer reference plus the
/// parent span to attach children to. `Copy + Send + Sync`, so rayon
/// closures capture it by value — this is the explicit handoff that
/// carries the hierarchy across worker threads.
///
/// The default ([`TraceCtx::disabled`]) carries no tracer and makes
/// every operation a no-op, so instrumented code paths cost nothing
/// when tracing is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceCtx<'a> {
    tracer: Option<&'a Tracer>,
    parent: Option<SpanId>,
}

impl<'a> TraceCtx<'a> {
    /// The no-op context: every span it opens is free and records
    /// nothing.
    pub const fn disabled() -> TraceCtx<'static> {
        TraceCtx {
            tracer: None,
            parent: None,
        }
    }

    /// A root context over `tracer` (spans open without a parent).
    pub fn root(tracer: &'a Tracer) -> TraceCtx<'a> {
        tracer.ctx()
    }

    /// Whether spans opened through this context are recorded.
    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Opens a span as a child of this context's parent.
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        match self.tracer {
            Some(tracer) => tracer.open(self.parent, name, None),
            None => SpanGuard::noop(name),
        }
    }

    /// Opens a scenario-tagged span as a child of this context's
    /// parent (used for roots of per-scenario subtrees).
    pub fn span_for(&self, scenario: &str, name: &'static str) -> SpanGuard<'a> {
        match self.tracer {
            Some(tracer) => tracer.open(self.parent, name, Some(scenario.to_string())),
            None => SpanGuard::noop(name),
        }
    }
}

/// RAII guard for one open span: records the interval into the tracer
/// when dropped. Obtain children contexts with [`SpanGuard::ctx`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    scenario: Option<String>,
    tid: u64,
    start_micros: u64,
}

impl<'a> SpanGuard<'a> {
    fn noop(name: &'static str) -> SpanGuard<'a> {
        SpanGuard {
            tracer: None,
            id: SpanId(0),
            parent: None,
            name,
            scenario: None,
            tid: 0,
            start_micros: 0,
        }
    }

    /// This span's id, if recording ([`None`] when tracing is off).
    pub fn id(&self) -> Option<SpanId> {
        self.tracer.map(|_| self.id)
    }

    /// A context whose spans become children of this span. `Copy`, so
    /// it can be moved into any number of worker closures.
    pub fn ctx(&self) -> TraceCtx<'a> {
        TraceCtx {
            tracer: self.tracer,
            parent: self.tracer.map(|_| self.id),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            let end = tracer.now_micros();
            tracer.record(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                scenario: self.scenario.take(),
                tid: self.tid,
                start_micros: self.start_micros,
                dur_micros: end.saturating_sub(self.start_micros),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn spans_nest_and_record_parent_links() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("2019_7", "scenario");
            let ctx = root.ctx();
            {
                let child = ctx.span("fra");
                let _grandchild = child.ctx().span("rf_fit");
            }
            let _sibling = ctx.span("shap");
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("scenario");
        assert_eq!(root.parent, None);
        assert_eq!(root.scenario.as_deref(), Some("2019_7"));
        assert_eq!(by_name("fra").parent, Some(root.id));
        assert_eq!(by_name("shap").parent, Some(root.id));
        assert_eq!(by_name("rf_fit").parent, Some(by_name("fra").id));
        // Children complete before parents, and intervals nest.
        for s in &spans {
            if let Some(pid) = s.parent {
                let p = spans.iter().find(|c| c.id == pid).expect("parent recorded");
                assert!(s.start_micros >= p.start_micros);
                assert!(s.end_micros() <= p.end_micros());
            }
        }
    }

    #[test]
    fn handoff_crosses_real_threads() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("2019_7", "forest_fit");
            let ctx = root.ctx();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(move || {
                        let _child = ctx.span("tree_fit");
                    });
                }
            });
        }
        let spans = tracer.snapshot();
        let root = spans.iter().find(|s| s.name == "forest_fit").unwrap();
        let children: Vec<_> = spans.iter().filter(|s| s.name == "tree_fit").collect();
        assert_eq!(children.len(), 3);
        for c in &children {
            assert_eq!(c.parent, Some(root.id));
            assert_ne!(c.tid, root.tid, "spawned threads get their own tid");
        }
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.enabled());
        let guard = ctx.span("anything");
        assert_eq!(guard.id(), None);
        let child = guard.ctx().span("child");
        drop(child);
        drop(guard);
        // Nothing observable happened; nothing to assert beyond no panic.
    }

    #[test]
    fn chrome_trace_json_is_valid_and_schema_complete() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("2019_7", "scenario \"quoted\"");
            let _child = root.ctx().span("tune");
        }
        let text = tracer.chrome_trace_json();
        let value = json::parse(&text).expect("chrome trace parses as JSON");
        let events = match value.get("traceEvents") {
            Some(Value::Array(items)) => items,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        // 1 thread-name metadata event + 2 spans.
        assert_eq!(events.len(), 3);
        let mut complete = 0;
        for e in events {
            let ph = e.req_str("ph").expect("ph present");
            assert!(matches!(ph, "X" | "M"), "unexpected phase {ph}");
            assert!(e.req_uint("pid").is_ok(), "pid must be an integer");
            assert!(e.req_uint("tid").is_ok(), "tid must be an integer");
            assert!(e.req_str("name").is_ok(), "name must be a string");
            if ph == "X" {
                complete += 1;
                // Perfetto requires numeric ts/dur on complete events.
                assert!(e.req_uint("ts").is_ok(), "ts must be an integer");
                assert!(e.req_uint("dur").is_ok(), "dur must be an integer");
                assert!(e.get("args").is_some());
            }
        }
        assert_eq!(complete, 2);
    }

    #[test]
    fn thread_ids_are_dense_and_stable() {
        let tracer = Tracer::new();
        drop(tracer.span("s", "a"));
        drop(tracer.span("s", "b"));
        let spans = tracer.snapshot();
        assert_eq!(spans[0].tid, 1);
        assert_eq!(spans[1].tid, 1, "same thread keeps its tid");
    }
}
