//! Crash-resumable persistence for scenario-matrix runs.
//!
//! Layout of a matrix store rooted at `DIR`:
//!
//! ```text
//! DIR/
//!   matrix_run.json        run fingerprint (hash of the matrix config)
//!   cells/
//!     <fnv16hex>.json      one completed cell, named by cell-id hash
//! ```
//!
//! Every write goes through a temp file and an atomic rename, so a
//! `SIGKILL` mid-run can leave a stray `*.tmp` but never a torn record:
//! on resume a cell file either exists complete or does not exist. Cell
//! files are two lines — a header naming the cell and the payload
//! checksum, then the payload itself — mirroring the model-artifact
//! envelope, so a damaged file is detected and treated as *incomplete*
//! (the cell re-runs) rather than poisoning the resume.
//!
//! The fingerprint file pins the store to one matrix configuration: a
//! resume against a store written by a different config would silently
//! mix incompatible cells, so [`MatrixStore::open`] refuses it unless
//! the caller explicitly asks for a fresh start.

use std::fs;
use std::path::{Path, PathBuf};

use c100_obs::json::{self, write_escaped};

use crate::artifact::fnv1a64;
use crate::{Result, StoreError};

/// Matrix store format revision.
const MATRIX_STORE_VERSION: u64 = 1;

const RUN_FILE: &str = "matrix_run.json";
const CELLS_DIR: &str = "cells";

/// One cell recovered from a previous (possibly killed) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedCell {
    /// The cell id the record was saved under.
    pub cell_id: String,
    /// The cell's JSON record, byte-for-byte as saved.
    pub payload: String,
}

/// Directory-backed store of completed matrix cells.
///
/// The scheduler streams each finished cell through [`MatrixStore::
/// save_cell`] as it completes; a killed run reopens the store and gets
/// back every cell that finished, skipping their recomputation.
#[derive(Debug)]
pub struct MatrixStore {
    root: PathBuf,
}

impl MatrixStore {
    /// Opens (creating if necessary) a matrix store rooted at `root` for
    /// a run configuration hashing to `fingerprint`, returning the store
    /// and every intact completed cell from previous runs.
    ///
    /// A store previously written under a *different* fingerprint is
    /// refused with [`StoreError::RunMismatch`] — unless `fresh` is set,
    /// in which case the stale cells are deleted and the run starts
    /// over. Matching fingerprints resume: completed cells are returned
    /// sorted by cell id, damaged or torn records silently dropped.
    pub fn open(
        root: impl Into<PathBuf>,
        fingerprint: &str,
        fresh: bool,
    ) -> Result<(MatrixStore, Vec<CompletedCell>)> {
        let root = root.into();
        fs::create_dir_all(root.join(CELLS_DIR))?;
        let store = MatrixStore { root };
        let run_path = store.root.join(RUN_FILE);
        let existing = match fs::read_to_string(&run_path) {
            Ok(text) => Some(parse_run_file(&text)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        match existing {
            Some(found) if found == fingerprint => {
                let cells = store.load_completed()?;
                Ok((store, cells))
            }
            Some(found) if fresh => {
                let _ = found;
                store.clear_cells()?;
                store.write_run_file(fingerprint)?;
                Ok((store, Vec::new()))
            }
            Some(found) => Err(StoreError::RunMismatch {
                found,
                expected: fingerprint.to_string(),
            }),
            None => {
                store.write_run_file(fingerprint)?;
                Ok((store, Vec::new()))
            }
        }
    }

    /// Persists one completed cell atomically. Re-saving a cell id
    /// overwrites its previous record.
    pub fn save_cell(&self, cell_id: &str, payload: &str) -> Result<()> {
        let checksum = fnv1a64(payload.as_bytes());
        let mut header = String::from("{\"version\":");
        header.push_str(&MATRIX_STORE_VERSION.to_string());
        header.push_str(",\"cell\":");
        write_escaped(&mut header, cell_id);
        header.push_str(&format!(
            ",\"checksum\":\"{checksum:016x}\",\"payload_bytes\":{}}}",
            payload.len()
        ));
        let text = format!("{header}\n{payload}\n");
        write_atomic(&self.cell_path(cell_id), &text)
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cell_path(&self, cell_id: &str) -> PathBuf {
        let name = format!("{:016x}.json", fnv1a64(cell_id.as_bytes()));
        self.root.join(CELLS_DIR).join(name)
    }

    fn write_run_file(&self, fingerprint: &str) -> Result<()> {
        let mut text = String::from("{\"version\":");
        text.push_str(&MATRIX_STORE_VERSION.to_string());
        text.push_str(",\"fingerprint\":");
        write_escaped(&mut text, fingerprint);
        text.push('}');
        write_atomic(&self.root.join(RUN_FILE), &text)
    }

    fn clear_cells(&self) -> Result<()> {
        let dir = self.root.join(CELLS_DIR);
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_file() {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    fn load_completed(&self) -> Result<Vec<CompletedCell>> {
        let dir = self.root.join(CELLS_DIR);
        let mut cells = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue; // stray *.tmp from a kill mid-write
            }
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(_) => continue,
            };
            if let Some(cell) = decode_cell(&text) {
                cells.push(cell);
            }
        }
        cells.sort_by(|a, b| a.cell_id.cmp(&b.cell_id));
        Ok(cells)
    }
}

/// Decodes a two-line cell record, returning `None` for anything torn,
/// truncated or corrupted — such cells simply re-run.
fn decode_cell(text: &str) -> Option<CompletedCell> {
    let (header, rest) = text.split_once('\n')?;
    let payload = rest.strip_suffix('\n').unwrap_or(rest);
    let value = json::parse(header).ok()?;
    if value.req_uint("version").ok()? != MATRIX_STORE_VERSION {
        return None;
    }
    let cell_id = value.req_str("cell").ok()?;
    let checksum = value.req_str("checksum").ok()?;
    let bytes = value.req_uint("payload_bytes").ok()?;
    if payload.len() as u64 != bytes {
        return None;
    }
    if format!("{:016x}", fnv1a64(payload.as_bytes())) != checksum {
        return None;
    }
    Some(CompletedCell {
        cell_id: cell_id.to_string(),
        payload: payload.to_string(),
    })
}

fn parse_run_file(text: &str) -> Result<String> {
    let malformed = |e: json::JsonError| StoreError::Malformed(format!("matrix_run.json: {e}"));
    let value = json::parse(text).map_err(malformed)?;
    let version = value.req_uint("version").map_err(malformed)?;
    if version != MATRIX_STORE_VERSION {
        return Err(StoreError::Malformed(format!(
            "unsupported matrix store version {version} (expected {MATRIX_STORE_VERSION})"
        )));
    }
    Ok(value.req_str("fingerprint").map_err(malformed)?.to_string())
}

fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("c100_matrix_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_and_resume_round_trip() {
        let dir = tmp_dir("roundtrip");
        let (store, cells) = MatrixStore::open(&dir, "fp-1", false).unwrap();
        assert!(cells.is_empty());
        store.save_cell("b_cell", "{\"mse\":1.5}").unwrap();
        store.save_cell("a_cell", "{\"mse\":0.5}").unwrap();
        drop(store);
        let (_, cells) = MatrixStore::open(&dir, "fp-1", false).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].cell_id, "a_cell");
        assert_eq!(cells[0].payload, "{\"mse\":0.5}");
        assert_eq!(cells[1].cell_id, "b_cell");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resave_overwrites() {
        let dir = tmp_dir("resave");
        let (store, _) = MatrixStore::open(&dir, "fp", false).unwrap();
        store.save_cell("c", "{\"v\":1}").unwrap();
        store.save_cell("c", "{\"v\":2}").unwrap();
        let (_, cells) = MatrixStore::open(&dir, "fp", false).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].payload, "{\"v\":2}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused_unless_fresh() {
        let dir = tmp_dir("mismatch");
        let (store, _) = MatrixStore::open(&dir, "fp-old", false).unwrap();
        store.save_cell("c", "{}").unwrap();
        let err = MatrixStore::open(&dir, "fp-new", false).unwrap_err();
        match err {
            StoreError::RunMismatch { found, expected } => {
                assert_eq!(found, "fp-old");
                assert_eq!(expected, "fp-new");
            }
            other => panic!("expected RunMismatch, got {other}"),
        }
        // fresh=true wipes the stale cells and rebinds the fingerprint.
        let (_, cells) = MatrixStore::open(&dir, "fp-new", true).unwrap();
        assert!(cells.is_empty());
        let (_, cells) = MatrixStore::open(&dir, "fp-new", false).unwrap();
        assert!(cells.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_records_are_skipped() {
        let dir = tmp_dir("torn");
        let (store, _) = MatrixStore::open(&dir, "fp", false).unwrap();
        store.save_cell("good", "{\"ok\":true}").unwrap();
        // A record truncated mid-payload (simulated kill without rename
        // protection) and a bit-flipped one.
        let cells_dir = dir.join(CELLS_DIR);
        fs::write(
            cells_dir.join("1111111111111111.json"),
            "{\"version\":1,\"cell\":\"torn\",\"checksum\":\"0000000000000000\",\"payload_bytes\":99}\n{\"tr",
        )
        .unwrap();
        fs::write(
            cells_dir.join("2222222222222222.json"),
            "{\"version\":1,\"cell\":\"flip\",\"checksum\":\"0000000000000000\",\"payload_bytes\":2}\n{}\n",
        )
        .unwrap();
        fs::write(cells_dir.join("stray.json.tmp"), "half a wri").unwrap();
        let (_, cells) = MatrixStore::open(&dir, "fp", false).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cell_id, "good");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_ids_with_odd_characters_are_safe_filenames() {
        let dir = tmp_dir("odd");
        let (store, _) = MatrixStore::open(&dir, "fp", false).unwrap();
        let id = "crix30r30/bull-0:7 \"quoted\"";
        store.save_cell(id, "{\"x\":1}").unwrap();
        let (_, cells) = MatrixStore::open(&dir, "fp", false).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cell_id, id);
        let _ = fs::remove_dir_all(&dir);
    }
}
