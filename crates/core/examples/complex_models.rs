//! Impact of data-source diversity on a more complex model — the paper's
//! "Impact on complex models" future-work direction: repeat the diversity
//! comparison with an MLP next to the tree ensembles.
//!
//! ```text
//! cargo run --release -p c100-core --example complex_models
//! ```

use c100_core::dataset::assemble;
use c100_core::report::{pct, TextTable};
use c100_core::scenario::{build_scenario, Period};
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::metrics::{mse, mse_percentage_decrease};
use c100_ml::mlp::MlpConfig;
use c100_ml::tree::MaxFeatures;
use c100_ml::{Estimator, Regressor};
use c100_synth::DataCategory;

fn eval<E: Estimator>(
    scenario: &c100_core::scenario::ScenarioData,
    features: &[String],
    estimator: &E,
    seed: u64,
) -> f64 {
    let refs: Vec<&str> = features.iter().map(|s| s.as_str()).collect();
    let train = scenario.train_matrix(&refs).expect("train");
    let test = scenario.test_matrix(&refs).expect("test");
    let x_train = Matrix::from_row_major(train.x.clone(), train.n_features).unwrap();
    let x_test = Matrix::from_row_major(test.x.clone(), test.n_features).unwrap();
    let model = estimator.fit_model(&x_train, &train.y, seed).expect("fit");
    mse(&test.y, &model.predict(&x_test))
}

fn main() {
    let data = c100_synth::generate(&c100_synth::SynthConfig::small(23));
    let master = assemble(&data).expect("assemble");
    let scenario = build_scenario(&master, Period::Y2019, 30).expect("scenario");

    let diverse = scenario.feature_names.clone();
    let single: Vec<String> = scenario.features_of(DataCategory::Sentiment);
    println!(
        "scenario {}: diverse = {} features, sentiment-only = {} features\n",
        scenario.id(),
        diverse.len(),
        single.len()
    );

    let rf = RandomForestConfig {
        n_estimators: 30,
        max_depth: Some(10),
        max_features: MaxFeatures::All,
        ..Default::default()
    };
    let gbdt = GbdtConfig {
        n_estimators: 40,
        learning_rate: 0.2,
        max_depth: 4,
        colsample_bytree: 0.5,
        ..Default::default()
    };
    let mlp = MlpConfig {
        hidden_layers: vec![64, 32],
        epochs: 120,
        ..Default::default()
    };

    let mut table = TextTable::new(&["Model", "diverse MSE", "sentiment MSE", "improvement"]);
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "RandomForest",
            eval(&scenario, &diverse, &rf, 1),
            eval(&scenario, &single, &rf, 1),
        ),
        (
            "GBDT (XGB-style)",
            eval(&scenario, &diverse, &gbdt, 2),
            eval(&scenario, &single, &gbdt, 2),
        ),
        (
            "MLP [64,32]",
            eval(&scenario, &diverse, &mlp, 3),
            eval(&scenario, &single, &mlp, 3),
        ),
    ];
    for (name, diverse_mse, single_mse) in rows {
        table.row(&[
            name.to_string(),
            format!("{diverse_mse:.3e}"),
            format!("{single_mse:.3e}"),
            pct(mse_percentage_decrease(single_mse, diverse_mse)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n(the paper's open question — does diversity help or introduce noise\n\
         once the model is more complex? — gets a nuanced answer: tree\n\
         ensembles exploit the raw diverse candidate set, while the MLP can\n\
         be overwhelmed by hundreds of unselected features — which is exactly\n\
         why the paper's FRA-selected vector, not the raw panel, should feed\n\
         complex models)"
    );
}
