//! A date-indexed columnar frame.
//!
//! The frame owns a contiguous daily [`Date`] index plus a set of named
//! [`Series`] columns of identical length. Column lookup is O(1) through a
//! name → position map; the column order is preserved so experiment output
//! is stable across runs.

use std::collections::HashMap;

use crate::date::{Date, DateRange};
use crate::series::Series;
use crate::{Result, TsError};

/// A daily, date-indexed collection of equally long named columns.
#[derive(Debug, Clone)]
pub struct Frame {
    start: Date,
    len: usize,
    columns: Vec<Series>,
    by_name: HashMap<String, usize>,
}

impl Frame {
    /// An empty frame over `len` consecutive days starting at `start`.
    pub fn with_daily_index(start: Date, len: usize) -> Self {
        Frame {
            start,
            len,
            columns: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// An empty frame spanning `[start, end]` inclusive.
    pub fn spanning(start: Date, end: Date) -> Result<Self> {
        let range = DateRange::inclusive(start, end);
        if range.is_empty() {
            return Err(TsError::BadRange(format!("{start} > {end}")));
        }
        Ok(Frame::with_daily_index(start, range.len()))
    }

    /// First date of the index.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Last date of the index.
    pub fn end(&self) -> Date {
        self.start.add_days(self.len as i32 - 1)
    }

    /// Number of rows (days).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the frame has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The date at row `row`.
    pub fn date_at(&self, row: usize) -> Date {
        self.start.add_days(row as i32)
    }

    /// The row index of `date`, if it falls inside the frame.
    pub fn row_of(&self, date: Date) -> Option<usize> {
        let offset = date.days_between(self.start);
        if offset >= 0 && (offset as usize) < self.len {
            Some(offset as usize)
        } else {
            None
        }
    }

    /// Iterates the index dates in order.
    pub fn dates(&self) -> DateRange {
        DateRange::inclusive(self.start, self.end())
    }

    /// Adds a column; its length must match the index.
    pub fn push_column(&mut self, series: Series) -> Result<()> {
        if series.len() != self.len {
            return Err(TsError::LengthMismatch {
                expected: self.len,
                actual: series.len(),
            });
        }
        if self.by_name.contains_key(series.name()) {
            return Err(TsError::DuplicateColumn(series.name().to_string()));
        }
        self.by_name
            .insert(series.name().to_string(), self.columns.len());
        self.columns.push(series);
        Ok(())
    }

    /// Immutable access to a column by name.
    pub fn column(&self, name: &str) -> Option<&Series> {
        self.by_name.get(name).map(|&i| &self.columns[i])
    }

    /// Mutable access to a column by name.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Series> {
        let idx = *self.by_name.get(name)?;
        Some(&mut self.columns[idx])
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> &Series {
        &self.columns[idx]
    }

    /// All columns in insertion order.
    pub fn columns(&self) -> &[Series] {
        &self.columns
    }

    /// Mutable iteration over all columns.
    pub fn columns_mut(&mut self) -> impl Iterator<Item = &mut Series> {
        self.columns.iter_mut()
    }

    /// Column names in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// True when a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Removes a column by name, returning it.
    pub fn drop_column(&mut self, name: &str) -> Result<Series> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| TsError::MissingColumn(name.to_string()))?;
        let series = self.columns.remove(idx);
        self.by_name.remove(name);
        for pos in self.by_name.values_mut() {
            if *pos > idx {
                *pos -= 1;
            }
        }
        Ok(series)
    }

    /// Keeps only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Frame> {
        let mut out = Frame::with_daily_index(self.start, self.len);
        for &name in names {
            let col = self
                .column(name)
                .ok_or_else(|| TsError::MissingColumn(name.to_string()))?;
            out.push_column(col.clone())?;
        }
        Ok(out)
    }

    /// Slices all columns to the inclusive date window `[from, to]`.
    pub fn window(&self, from: Date, to: Date) -> Result<Frame> {
        let lo = self
            .row_of(from)
            .ok_or_else(|| TsError::BadRange(format!("{from} outside frame")))?;
        let hi = self
            .row_of(to)
            .ok_or_else(|| TsError::BadRange(format!("{to} outside frame")))?;
        if hi < lo {
            return Err(TsError::BadRange(format!("{from} > {to}")));
        }
        let mut out = Frame::with_daily_index(from, hi - lo + 1);
        for col in &self.columns {
            out.push_column(col.slice(lo, hi + 1))?;
        }
        Ok(out)
    }

    /// Slices all columns to rows `[start_row, end_row)`.
    pub fn row_slice(&self, start_row: usize, end_row: usize) -> Result<Frame> {
        if start_row > end_row || end_row > self.len {
            return Err(TsError::BadRange(format!("rows {start_row}..{end_row}")));
        }
        let mut out = Frame::with_daily_index(self.date_at(start_row), end_row - start_row);
        for col in &self.columns {
            out.push_column(col.slice(start_row, end_row))?;
        }
        Ok(out)
    }

    /// Merges another frame's columns into this one, aligning by date.
    ///
    /// Rows of `other` outside this frame's index are dropped; rows of this
    /// frame not covered by `other` become missing. This is how the
    /// differently dated raw sources (USDC from 2018-10, fear-greed from
    /// 2018-02, …) are folded into the master panel.
    pub fn merge_aligned(&mut self, other: &Frame) -> Result<()> {
        let offset = other.start.days_between(self.start); // other row 0 lands here
        for col in &other.columns {
            let mut values = vec![f64::NAN; self.len];
            for (i, &v) in col.values().iter().enumerate() {
                let row = offset + i as i32;
                if row >= 0 && (row as usize) < self.len {
                    values[row as usize] = v;
                }
            }
            self.push_column(Series::new(col.name(), values))?;
        }
        Ok(())
    }

    /// Extracts the named columns into a dense row-major matrix plus the
    /// target column, dropping any row with a missing value in either.
    ///
    /// This is the hand-off point into the ML substrate: trees consume a
    /// dense design matrix.
    pub fn to_matrix(&self, feature_names: &[&str], target: &str) -> Result<DesignMatrix> {
        let target_col = self
            .column(target)
            .ok_or_else(|| TsError::MissingColumn(target.to_string()))?;
        let mut cols = Vec::with_capacity(feature_names.len());
        for &name in feature_names {
            cols.push(
                self.column(name)
                    .ok_or_else(|| TsError::MissingColumn(name.to_string()))?,
            );
        }
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut kept_rows = Vec::new();
        'rows: for r in 0..self.len {
            let t = target_col.values()[r];
            if t.is_nan() {
                continue;
            }
            for col in &cols {
                if col.values()[r].is_nan() {
                    continue 'rows;
                }
            }
            for col in &cols {
                rows.push(col.values()[r]);
            }
            y.push(t);
            kept_rows.push(r);
        }
        Ok(DesignMatrix {
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
            n_features: feature_names.len(),
            x: rows,
            y,
            kept_rows,
        })
    }
}

/// A dense row-major design matrix extracted from a frame.
#[derive(Debug, Clone)]
pub struct DesignMatrix {
    /// Names of the feature columns, in matrix column order.
    pub feature_names: Vec<String>,
    /// Number of feature columns.
    pub n_features: usize,
    /// Row-major features: `x[row * n_features + col]`.
    pub x: Vec<f64>,
    /// Target values, one per kept row.
    pub y: Vec<f64>,
    /// Original frame row index of each kept row.
    pub kept_rows: Vec<usize>,
}

impl DesignMatrix {
    /// Number of rows that survived missing-value filtering.
    pub fn n_rows(&self) -> usize {
        self.y.len()
    }

    /// One row of features.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.x[r * self.n_features..(r + 1) * self.n_features]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn frame_with(values: &[(&str, Vec<f64>)]) -> Frame {
        let len = values[0].1.len();
        let mut f = Frame::with_daily_index(day("2020-01-01"), len);
        for (name, vals) in values {
            f.push_column(Series::new(*name, vals.clone())).unwrap();
        }
        f
    }

    #[test]
    fn index_maps_dates_to_rows() {
        let f = Frame::with_daily_index(day("2020-01-01"), 10);
        assert_eq!(f.end(), day("2020-01-10"));
        assert_eq!(f.row_of(day("2020-01-03")), Some(2));
        assert_eq!(f.row_of(day("2019-12-31")), None);
        assert_eq!(f.row_of(day("2020-01-11")), None);
        assert_eq!(f.date_at(9), day("2020-01-10"));
    }

    #[test]
    fn rejects_mismatched_and_duplicate_columns() {
        let mut f = Frame::with_daily_index(day("2020-01-01"), 3);
        assert!(matches!(
            f.push_column(Series::new("a", vec![1.0])),
            Err(TsError::LengthMismatch { .. })
        ));
        f.push_column(Series::new("a", vec![1.0, 2.0, 3.0]))
            .unwrap();
        assert!(matches!(
            f.push_column(Series::new("a", vec![1.0, 2.0, 3.0])),
            Err(TsError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn drop_column_keeps_lookup_consistent() {
        let mut f = frame_with(&[
            ("a", vec![1.0, 2.0]),
            ("b", vec![3.0, 4.0]),
            ("c", vec![5.0, 6.0]),
        ]);
        f.drop_column("b").unwrap();
        assert_eq!(f.width(), 2);
        assert_eq!(f.column("c").unwrap().values(), &[5.0, 6.0]);
        assert!(f.column("b").is_none());
        assert!(f.drop_column("b").is_err());
    }

    #[test]
    fn select_preserves_requested_order() {
        let f = frame_with(&[("a", vec![1.0]), ("b", vec![2.0]), ("c", vec![3.0])]);
        let sel = f.select(&["c", "a"]).unwrap();
        assert_eq!(sel.column_names(), vec!["c", "a"]);
        assert!(f.select(&["zzz"]).is_err());
    }

    #[test]
    fn window_slices_by_date() {
        let f = frame_with(&[("a", vec![1.0, 2.0, 3.0, 4.0, 5.0])]);
        let w = f.window(day("2020-01-02"), day("2020-01-04")).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.start(), day("2020-01-02"));
        assert_eq!(w.column("a").unwrap().values(), &[2.0, 3.0, 4.0]);
        assert!(f.window(day("2019-01-01"), day("2020-01-02")).is_err());
    }

    #[test]
    fn merge_aligned_pads_and_clips() {
        let mut base = Frame::with_daily_index(day("2020-01-01"), 4);
        let mut late = Frame::with_daily_index(day("2020-01-03"), 4);
        late.push_column(Series::new("x", vec![10.0, 20.0, 30.0, 40.0]))
            .unwrap();
        base.merge_aligned(&late).unwrap();
        let x = base.column("x").unwrap().values();
        assert!(x[0].is_nan() && x[1].is_nan());
        assert_eq!(&x[2..], &[10.0, 20.0]);
    }

    #[test]
    fn to_matrix_drops_rows_with_missing() {
        let f = frame_with(&[
            ("f1", vec![1.0, f64::NAN, 3.0, 4.0]),
            ("f2", vec![10.0, 20.0, 30.0, f64::NAN]),
            ("y", vec![0.1, 0.2, f64::NAN, 0.4]),
        ]);
        let m = f.to_matrix(&["f1", "f2"], "y").unwrap();
        // Rows 1 (f1 NaN), 2 (y NaN) and 3 (f2 NaN) are dropped.
        assert_eq!(m.n_rows(), 1);
        assert_eq!(m.row(0), &[1.0, 10.0]);
        assert_eq!(m.y, vec![0.1]);
        assert_eq!(m.kept_rows, vec![0]);
    }
}
