//! Quickstart: synthesize a market, build the Crypto100 index, run one
//! scenario pipeline and train a forecasting model on its final features.
//!
//! ```text
//! cargo run --release -p c100-core --example quickstart
//! ```

use c100_core::index::Crypto100Builder;
use c100_core::pipeline::{run_scenario, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_ml::data::Matrix;
use c100_ml::metrics::{mse, r2};
use c100_ml::Regressor;
use c100_synth::SynthConfig;

fn main() {
    // 1. Synthesize 18 months of market data (seeded: reruns are identical).
    let config = SynthConfig::small(42);
    println!("synthesizing {} days of market data...", config.n_days());
    let data = c100_synth::generate(&config);

    // 2. The Crypto100 index: top-100 cap sum over the paper's scaling factor.
    let index = Crypto100Builder::default().build(&data.universe);
    let values = index.values();
    println!(
        "Crypto100: first {:.2}, last {:.2}, vs BTC close first {:.2}, last {:.2}",
        values[0],
        values[values.len() - 1],
        data.btc.close[0],
        data.btc.close[data.btc.close.len() - 1],
    );

    // 3. Run the paper's pipeline for one scenario (2019 set, 7-day window).
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    println!(
        "\nrunning scenario {} (fine-tune → FRA → SHAP → final vector)...",
        spec.id()
    );
    let result = run_scenario(&data, &spec, &Profile::fast()).expect("pipeline run");
    println!(
        "candidates: {}, FRA survivors: {}, final vector: {} features",
        result.n_candidates,
        result.fra.surviving.len(),
        result.final_features.len()
    );
    println!("top 5 features by importance:");
    for (name, importance) in result.final_importance.entries.iter().take(5) {
        println!("  {name:<28} {importance:.4}");
    }

    // 4. Train the tuned forest on the final features and evaluate.
    let features: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
    let train = result
        .scenario
        .train_matrix(&features)
        .expect("train matrix");
    let test = result.scenario.test_matrix(&features).expect("test matrix");
    let x_train = Matrix::from_row_major(train.x.clone(), train.n_features).unwrap();
    let x_test = Matrix::from_row_major(test.x.clone(), test.n_features).unwrap();
    let model = result
        .tuned_rf
        .fit(&x_train, &train.y, 7)
        .expect("fit forest");
    let predictions = model.predict(&x_test);
    println!(
        "\nheld-out 7-day-ahead forecast: MSE {:.1}, R² {:.3} over {} days",
        mse(&test.y, &predictions),
        r2(&test.y, &predictions),
        test.y.len()
    );
    println!(
        "(the held-out window is the end of the series: tree models clamp to\n\
         the price range they saw in training, so R² on a trending tail can\n\
         go negative — see the walk_forward_backtest example and the CV-based\n\
         evaluation in c100_core::diversity for the paper's protocol)"
    );
}
