//! Chronological train/test splitting.
//!
//! Time-series forecasting must never train on the future, so the split is
//! a single chronological cut rather than a shuffle.

use crate::frame::Frame;
use crate::{Result, TsError};

/// A chronological split of a frame into train and test windows.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Earlier portion used for fitting.
    pub train: Frame,
    /// Later, held-out portion used for evaluation.
    pub test: Frame,
}

/// Splits `frame` at `train_fraction` of its rows (train gets the earlier
/// part). Fails if either side would be empty.
pub fn chronological_split(frame: &Frame, train_fraction: f64) -> Result<TrainTestSplit> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(TsError::BadRange(format!(
            "train_fraction {train_fraction} outside [0, 1]"
        )));
    }
    let cut = (frame.len() as f64 * train_fraction).round() as usize;
    if cut == 0 || cut >= frame.len() {
        return Err(TsError::BadRange(format!(
            "cut {cut} leaves an empty side (len {})",
            frame.len()
        )));
    }
    Ok(TrainTestSplit {
        train: frame.row_slice(0, cut)?,
        test: frame.row_slice(cut, frame.len())?,
    })
}

/// Expanding-window walk-forward folds: fold `k` trains on rows
/// `[0, train_end_k)` and tests on the following `test_len` rows. Used for
/// robustness checks beyond the paper's single split.
pub fn walk_forward_folds(
    n_rows: usize,
    n_folds: usize,
    min_train: usize,
) -> Result<Vec<(std::ops::Range<usize>, std::ops::Range<usize>)>> {
    if n_folds == 0 || min_train >= n_rows {
        return Err(TsError::BadRange(format!(
            "cannot cut {n_folds} folds with min_train {min_train} from {n_rows} rows"
        )));
    }
    let test_total = n_rows - min_train;
    let test_len = test_total / n_folds;
    if test_len == 0 {
        return Err(TsError::BadRange(format!(
            "{test_total} test rows cannot cover {n_folds} folds"
        )));
    }
    let mut folds = Vec::with_capacity(n_folds);
    for k in 0..n_folds {
        let test_start = min_train + k * test_len;
        let test_end = if k == n_folds - 1 {
            n_rows
        } else {
            test_start + test_len
        };
        folds.push((0..test_start, test_start..test_end));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;
    use crate::series::Series;

    fn frame(len: usize) -> Frame {
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), len);
        f.push_column(Series::new("x", (0..len).map(|i| i as f64).collect()))
            .unwrap();
        f
    }

    #[test]
    fn split_is_chronological() {
        let f = frame(10);
        let split = chronological_split(&f, 0.8).unwrap();
        assert_eq!(split.train.len(), 8);
        assert_eq!(split.test.len(), 2);
        assert_eq!(split.test.column("x").unwrap().values(), &[8.0, 9.0]);
        assert_eq!(split.test.start(), f.date_at(8));
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let f = frame(10);
        assert!(chronological_split(&f, 0.0).is_err());
        assert!(chronological_split(&f, 1.0).is_err());
        assert!(chronological_split(&f, 1.5).is_err());
    }

    #[test]
    fn walk_forward_folds_cover_tail_exactly() {
        let folds = walk_forward_folds(100, 3, 40).unwrap();
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[0], (0..40, 40..60));
        assert_eq!(folds[1], (0..60, 60..80));
        assert_eq!(folds[2], (0..80, 80..100));
    }

    #[test]
    fn walk_forward_rejects_impossible_cuts() {
        assert!(walk_forward_folds(10, 0, 5).is_err());
        assert!(walk_forward_folds(10, 3, 10).is_err());
        assert!(walk_forward_folds(10, 20, 5).is_err());
    }
}
