//! Integration tests for the Crypto100 index and the figure-producing
//! paths (Figures 1 and 2), including CSV round-trips of the exports.

use c100_core::experiments::{figure1, figure2};
use c100_core::index::{Crypto100Builder, DEFAULT_POWER};
use c100_integration::{full_span_market, small_market};
use c100_timeseries::csv;

#[test]
fn crypto100_tracks_the_market() {
    let data = small_market(401);
    let index = Crypto100Builder::default().build(&data.universe);
    // The index must be strongly correlated with its own cap base and BTC.
    let corr_btc = c100_timeseries::stats::pearson(index.values(), &data.btc.close);
    assert!(corr_btc > 0.9, "index vs BTC corr {corr_btc}");
    assert!(index.values().iter().all(|v| *v > 0.0));
    assert_eq!(index.len(), data.universe.n_days());
}

#[test]
fn default_power_matches_paper() {
    assert_eq!(DEFAULT_POWER, 7.0);
}

#[test]
fn figure1_export_round_trips() {
    let data = small_market(402);
    let frame = figure1(&data).unwrap();
    let dir = std::env::temp_dir().join("c100_fig1_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig1.csv");
    csv::write_frame_to_path(&frame, &path).unwrap();
    let parsed = csv::read_frame_from_path(&path).unwrap();
    assert_eq!(parsed.len(), frame.len());
    assert_eq!(
        parsed.column("top100_cap").unwrap().values(),
        frame.column("top100_cap").unwrap().values()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure2_power_ordering_holds_on_full_span() {
    // Over the full 2017-2023 span with realistic cap magnitudes the mean
    // index/BTC ratio must be ordered p6 > p7 > p8 and p7 nearest to 1 —
    // the tuning argument of the paper's Figure 2.
    let data = full_span_market(403);
    let (_, comparisons) = figure2(&data).unwrap();
    assert_eq!(comparisons.len(), 3);
    let ratio = |p: f64| {
        comparisons
            .iter()
            .find(|c| c.power == p)
            .map(|c| c.mean_ratio_to_btc)
            .unwrap()
    };
    assert!(ratio(6.0) > ratio(7.0));
    assert!(ratio(7.0) > ratio(8.0));
    let log_distance = |p: f64| ratio(p).log10().abs();
    assert!(log_distance(7.0) < log_distance(6.0));
    assert!(log_distance(7.0) < log_distance(8.0));
}

#[test]
fn index_is_continuous_despite_top100_churn() {
    // The scaling factor must keep daily index moves in the same ballpark
    // as BTC's daily moves (no jumps when the membership changes).
    let data = full_span_market(404);
    let index = Crypto100Builder::default().build(&data.universe);
    let values = index.values();
    let max_move = values
        .windows(2)
        .map(|w| (w[1] / w[0]).ln().abs())
        .fold(0.0f64, f64::max);
    assert!(max_move < 0.5, "index jumped {max_move} in one day");
}
