//! The observer-carrying run context threaded through the orchestration
//! API.
//!
//! A [`RunContext`] bundles the compute [`Profile`] with the
//! [`RunObserver`] that receives pipeline telemetry. The silent
//! constructors ([`RunContext::new`]) make the context free when
//! observability is not wanted — every legacy entry point
//! (`run_scenario_on`, `run_full_evaluation`, …) wraps one of these, so
//! existing callers keep compiling unchanged.

use std::time::Instant;

use c100_obs::{Event, NullObserver, RunObserver, Stage, TraceCtx};

use crate::profile::Profile;

/// Shared state for one pipeline run: the compute profile, the event
/// sink and the span-tracing context. Cheap to construct and copy;
/// borrows all members.
#[derive(Clone, Copy)]
pub struct RunContext<'a> {
    /// The compute profile (grids, folds, sampling counts, master seed).
    pub profile: &'a Profile,
    /// Receives every pipeline event.
    pub observer: &'a dyn RunObserver,
    /// Span-tracing handle; disabled (free) unless installed with
    /// [`RunContext::with_trace`].
    pub trace: TraceCtx<'a>,
}

impl<'a> RunContext<'a> {
    /// A silent context: all events go to [`NullObserver`] and tracing
    /// is disabled.
    pub fn new(profile: &'a Profile) -> RunContext<'a> {
        RunContext {
            profile,
            observer: &NullObserver,
            trace: TraceCtx::disabled(),
        }
    }

    /// A context that reports to `observer` (tracing stays disabled).
    pub fn with_observer(profile: &'a Profile, observer: &'a dyn RunObserver) -> RunContext<'a> {
        RunContext {
            profile,
            observer,
            trace: TraceCtx::disabled(),
        }
    }

    /// Returns the context with `trace` installed; spans opened by the
    /// pipeline nest under whatever parent the context carries.
    pub fn with_trace(mut self, trace: TraceCtx<'a>) -> RunContext<'a> {
        self.trace = trace;
        self
    }

    /// Emits one event.
    pub fn emit(&self, event: Event) {
        self.observer.on_event(&event);
    }

    /// Runs `f` bracketed by [`Event::StageStarted`] /
    /// [`Event::StageFinished`] events carrying the measured duration,
    /// inside a span named after the stage. The closure receives the
    /// stage span's [`TraceCtx`] so deeper work nests beneath it.
    pub fn time_stage<T>(
        &self,
        scenario: &str,
        stage: Stage,
        f: impl FnOnce(TraceCtx<'a>) -> T,
    ) -> T {
        self.emit(Event::StageStarted {
            scenario: scenario.to_string(),
            stage,
        });
        let span = self.trace.span(stage.label());
        let start = Instant::now();
        let out = f(span.ctx());
        drop(span);
        self.emit(Event::StageFinished {
            scenario: scenario.to_string(),
            stage,
            micros: duration_micros(start),
        });
        out
    }
}

/// Microseconds elapsed since `start`, saturating at `u64::MAX`.
pub(crate) fn duration_micros(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_obs::RecordingObserver;

    #[test]
    fn time_stage_brackets_the_closure() {
        let profile = Profile::fast();
        let rec = RecordingObserver::new();
        let ctx = RunContext::with_observer(&profile, &rec);
        let out = ctx.time_stage("2019_7", Stage::Fra, |_| 42);
        assert_eq!(out, 42);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            Event::StageStarted { scenario, stage: Stage::Fra } if scenario == "2019_7"
        ));
        assert!(matches!(
            &events[1],
            Event::StageFinished { scenario, stage: Stage::Fra, .. } if scenario == "2019_7"
        ));
    }

    #[test]
    fn time_stage_opens_a_span_under_the_installed_trace() {
        let profile = Profile::fast();
        let tracer = c100_obs::Tracer::new();
        let root = tracer.span("2019_7", "scenario");
        let ctx = RunContext::new(&profile).with_trace(root.ctx());
        ctx.time_stage("2019_7", Stage::Fra, |inner| {
            assert!(inner.enabled());
            let _leaf = inner.span("leaf");
        });
        drop(root);
        let spans = tracer.snapshot();
        let root_span = spans.iter().find(|s| s.name == "scenario").unwrap();
        let fra = spans.iter().find(|s| s.name == "fra").unwrap();
        let leaf = spans.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(fra.parent, Some(root_span.id));
        assert_eq!(leaf.parent, Some(fra.id));
    }

    #[test]
    fn silent_context_swallows_events() {
        let profile = Profile::fast();
        let ctx = RunContext::new(&profile);
        // Nothing to assert beyond "does not panic": NullObserver drops it.
        ctx.emit(Event::RunStarted { scenarios: 10 });
        assert_eq!(ctx.profile.cv_folds, profile.cv_folds);
    }
}
