//! Master panel assembly: every category's metrics merged onto one daily
//! index, plus the Crypto100 target series and a name → category map.

use std::collections::HashMap;

use c100_indicators::{technical_suite, TechnicalInputs};
use c100_synth::{DataCategory, MarketData};
use c100_timeseries::{Frame, Series};

use crate::index::Crypto100Builder;
use crate::{CoreError, Result, CRYPTO100};

/// The assembled master dataset.
pub struct MasterDataset {
    /// All candidate features plus the [`CRYPTO100`] price column.
    pub frame: Frame,
    /// Category of every feature column (the target has no entry).
    pub categories: HashMap<String, DataCategory>,
}

impl MasterDataset {
    /// Names of all feature columns (everything except the target).
    pub fn feature_names(&self) -> Vec<String> {
        self.frame
            .column_names()
            .into_iter()
            .filter(|n| *n != CRYPTO100)
            .map(|s| s.to_string())
            .collect()
    }

    /// Number of candidate features per category.
    pub fn category_counts(&self) -> HashMap<DataCategory, usize> {
        let mut counts = HashMap::new();
        for cat in self.categories.values() {
            *counts.entry(*cat).or_insert(0) += 1;
        }
        counts
    }
}

/// Assembles the master dataset from the synthetic market data.
///
/// Technical indicators are computed on the warm-up-extended BTC series so
/// even 200-day averages are defined from the first observed day, then
/// windowed back to the observed range.
pub fn assemble(data: &MarketData) -> Result<MasterDataset> {
    let config = &data.config;
    let warmup = config.warmup_days;
    let extended_start = config.start.add_days(-(warmup as i32));

    let inputs = TechnicalInputs {
        start: extended_start,
        close: data.btc.close_extended.clone(),
        high: data.btc.high_extended.clone(),
        low: data.btc.low_extended.clone(),
        volume: data.btc.volume_extended.clone(),
        market_cap: data.btc.market_cap_extended.clone(),
    };
    let technical_full = technical_suite(&inputs).map_err(CoreError::Pipeline)?;
    let technical = technical_full.window(config.start, config.end)?;

    let mut frame = Frame::spanning(config.start, config.end)?;
    let mut categories = HashMap::new();

    let merge = |frame: &mut Frame,
                 categories: &mut HashMap<String, DataCategory>,
                 part: &Frame,
                 cat: DataCategory|
     -> Result<()> {
        for name in part.column_names() {
            categories.insert(name.to_string(), cat);
        }
        frame.merge_aligned(part)?;
        Ok(())
    };

    merge(
        &mut frame,
        &mut categories,
        &technical,
        DataCategory::Technical,
    )?;
    merge(
        &mut frame,
        &mut categories,
        &data.onchain_btc,
        DataCategory::OnChainBtc,
    )?;
    merge(
        &mut frame,
        &mut categories,
        &data.onchain_usdc,
        DataCategory::OnChainUsdc,
    )?;
    merge(
        &mut frame,
        &mut categories,
        &data.sentiment,
        DataCategory::Sentiment,
    )?;
    merge(
        &mut frame,
        &mut categories,
        &data.tradfi,
        DataCategory::TradFi,
    )?;
    merge(
        &mut frame,
        &mut categories,
        &data.macro_econ,
        DataCategory::Macro,
    )?;

    // The target: Crypto100 at the paper's power-7 scaling.
    let index = Crypto100Builder::default().build(&data.universe);
    frame.push_column(Series::new(CRYPTO100, index.into_values()))?;

    Ok(MasterDataset { frame, categories })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_synth::{generate, SynthConfig};

    fn master() -> MasterDataset {
        assemble(&generate(&SynthConfig::small(81))).unwrap()
    }

    #[test]
    fn assembles_all_categories() {
        let m = master();
        let counts = m.category_counts();
        for cat in DataCategory::ALL {
            assert!(
                counts.get(&cat).copied().unwrap_or(0) > 10,
                "{cat} underpopulated: {counts:?}"
            );
        }
        // Roughly the paper's 429-metric original inventory.
        let total: usize = counts.values().sum();
        assert!(total > 280, "only {total} candidate metrics");
        assert!(m.frame.has_column(CRYPTO100));
        assert_eq!(m.feature_names().len(), total);
    }

    #[test]
    fn technical_indicators_defined_from_day_one() {
        let m = master();
        let ema200 = m.frame.column("EMA200_close-price").unwrap();
        assert_eq!(ema200.first_present(), Some(0));
    }

    #[test]
    fn target_is_positive_everywhere() {
        let m = master();
        for v in m.frame.column(CRYPTO100).unwrap().values() {
            assert!(*v > 0.0);
        }
    }

    #[test]
    fn category_map_covers_every_feature() {
        let m = master();
        for name in m.feature_names() {
            assert!(m.categories.contains_key(&name), "uncategorized {name}");
        }
        assert!(!m.categories.contains_key(CRYPTO100));
    }
}
