//! A small std-only work-stealing executor for matrix cells.
//!
//! Tasks are dealt round-robin onto per-worker deques up front (cells
//! never spawn cells, so the task set is closed). Each worker drains its
//! own deque from the front; when empty it scans the other workers and
//! steals from the *back* of the first non-empty deque it finds —
//! front/back separation keeps owner and thief off the same end, and
//! stealing the back grabs the work the owner would reach last. Results
//! land in a slot vector indexed by task order, so the output order is
//! independent of which worker ran what.
//!
//! Deques are `Mutex<VecDeque>` rather than lock-free: cells run for
//! milliseconds to seconds, so queue operations are nowhere near the
//! critical path and the simplest correct structure wins.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters the executor reports after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Tasks executed (always the input length).
    pub executed: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Workers actually spawned.
    pub workers: usize,
}

/// Runs `tasks` on `threads` workers, returning each task's result in
/// input order plus scheduling counters.
///
/// `threads == 1` runs everything inline on the calling thread (no
/// spawn), which is also the reference ordering for determinism tests.
/// The worker function must be `Sync` because all workers share it.
pub fn run_tasks<T, R, F>(tasks: Vec<T>, threads: usize, work: F) -> (Vec<R>, SchedStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_tasks = tasks.len();
    if n_tasks == 0 {
        return (Vec::new(), SchedStats::default());
    }
    let workers = threads.max(1).min(n_tasks);

    if workers == 1 {
        let results = tasks.into_iter().map(&work).collect();
        return (
            results,
            SchedStats {
                executed: n_tasks as u64,
                steals: 0,
                workers: 1,
            },
        );
    }

    // Deal tasks round-robin so each worker starts with a spread of the
    // input (neighbouring cells share prep; spreading them lets the prep
    // cache warm from several windows at once).
    let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        deques.push(Mutex::new(VecDeque::with_capacity(n_tasks / workers + 1)));
    }
    for (idx, task) in tasks.into_iter().enumerate() {
        deques[idx % workers]
            .get_mut()
            .unwrap()
            .push_back((idx, task));
    }

    let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let work = &work;
            scope.spawn(move || loop {
                // Own work first, front of own deque.
                let mut next = deques[me].lock().unwrap().pop_front();
                if next.is_none() {
                    // Idle: steal from the back of the first non-empty
                    // victim, scanning from our right neighbour so
                    // thieves spread over victims.
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        if let Some(stolen) = deques[victim].lock().unwrap().pop_back() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            next = Some(stolen);
                            break;
                        }
                    }
                }
                match next {
                    Some((idx, task)) => {
                        let result = work(task);
                        *slots[idx].lock().unwrap() = Some(result);
                    }
                    // Every deque was empty and tasks never respawn, so
                    // the pool is drained for good.
                    None => break,
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("scheduler invariant: every dealt task ran exactly once")
        })
        .collect();
    (
        results,
        SchedStats {
            executed: n_tasks as u64,
            steals: steals.load(Ordering::Relaxed),
            workers,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let tasks: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 8] {
            let (results, stats) = run_tasks(tasks.clone(), threads, |t| t * 3);
            assert_eq!(results, tasks.iter().map(|t| t * 3).collect::<Vec<_>>());
            assert_eq!(stats.executed, 257);
            assert_eq!(stats.workers, threads.min(257));
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let (_, stats) = run_tasks((0..500).collect::<Vec<usize>>(), 6, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.executed, 500);
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // Worker 0's deque holds all the slow tasks (dealt round-robin
        // with 2 workers: evens to 0, odds to 1); make evens slow so
        // worker 1 finishes its own and must steal to keep the run short.
        let (results, stats) = run_tasks((0..64).collect::<Vec<usize>>(), 2, |t| {
            if t % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t
        });
        assert_eq!(results, (0..64).collect::<Vec<_>>());
        assert!(stats.steals > 0, "expected steals, got {stats:?}");
    }

    #[test]
    fn empty_and_single_task_edge_cases() {
        let (results, stats) = run_tasks(Vec::<usize>::new(), 4, |t| t);
        assert!(results.is_empty());
        assert_eq!(stats.workers, 0);
        let (results, stats) = run_tasks(vec![41], 4, |t| t + 1);
        assert_eq!(results, vec![42]);
        assert_eq!(stats.workers, 1); // capped at task count
    }
}
