//! Integration-test host crate. The tests in `tests/` exercise the full
//! stack — synthesizer → dataset assembly → scenario preprocessing → FRA /
//! SHAP / diversity experiments — across crate boundaries. The library
//! itself only provides shared fixtures.

use c100_synth::{generate, MarketData, SynthConfig};

/// A small but fully featured market fixture shared by the tests: short
/// 2019-2020 span, reduced universe.
pub fn small_market(seed: u64) -> MarketData {
    generate(&SynthConfig::small(seed))
}

/// A 2017-2023 span fixture with a reduced universe, for tests that need
/// both scenario periods (USDC present in 2019 set only).
pub fn full_span_market(seed: u64) -> MarketData {
    generate(&SynthConfig {
        seed,
        n_assets: 120,
        ..SynthConfig::default()
    })
}
