//! Volume-based indicators: OBV, volume ratio, Chaikin money flow.

/// On-Balance Volume: cumulative volume signed by the close-to-close move.
pub fn obv(close: &[f64], volume: &[f64]) -> Vec<f64> {
    assert_eq!(close.len(), volume.len());
    let n = close.len();
    let mut out = vec![f64::NAN; n];
    if n == 0 {
        return out;
    }
    out[0] = 0.0;
    for t in 1..n {
        let delta = if close[t] > close[t - 1] {
            volume[t]
        } else if close[t] < close[t - 1] {
            -volume[t]
        } else {
            0.0
        };
        out[t] = out[t - 1] + delta;
    }
    out
}

/// Ratio of today's volume to its trailing `window`-day mean.
pub fn volume_ratio(volume: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be >= 1");
    let means = crate::moving::sma(volume, window);
    volume
        .iter()
        .zip(&means)
        .map(|(&v, &m)| {
            if m.is_nan() || m == 0.0 {
                f64::NAN
            } else {
                v / m
            }
        })
        .collect()
}

/// Chaikin Money Flow over `window` days.
pub fn cmf(high: &[f64], low: &[f64], close: &[f64], volume: &[f64], window: usize) -> Vec<f64> {
    assert_eq!(high.len(), low.len());
    assert_eq!(high.len(), close.len());
    assert_eq!(high.len(), volume.len());
    assert!(window >= 1, "window must be >= 1");
    let n = close.len();
    let mfv: Vec<f64> = (0..n)
        .map(|t| {
            let span = high[t] - low[t];
            if span <= 0.0 {
                0.0
            } else {
                ((close[t] - low[t]) - (high[t] - close[t])) / span * volume[t]
            }
        })
        .collect();
    crate::with_warmup(n, window - 1, |t| {
        let mfv_sum: f64 = mfv[t + 1 - window..=t].iter().sum();
        let vol_sum: f64 = volume[t + 1 - window..=t].iter().sum();
        if vol_sum == 0.0 {
            0.0
        } else {
            mfv_sum / vol_sum
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obv_accumulates_signed_volume() {
        let close = [1.0, 2.0, 1.5, 1.5, 3.0];
        let volume = [10.0, 20.0, 30.0, 40.0, 50.0];
        let out = obv(&close, &volume);
        assert_eq!(out, vec![0.0, 20.0, -10.0, -10.0, 40.0]);
    }

    #[test]
    fn volume_ratio_centered_on_one_for_flat_volume() {
        let out = volume_ratio(&[100.0; 20], 5);
        for v in out.iter().filter(|v| !v.is_nan()) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cmf_bounds() {
        // Close pinned at the high → CMF = +1; at the low → −1.
        let high = vec![10.0; 30];
        let low = vec![8.0; 30];
        let volume = vec![100.0; 30];
        let at_high = cmf(&high, &low, &high, &volume, 10);
        assert!((at_high[29] - 1.0).abs() < 1e-12);
        let at_low = cmf(&high, &low, &low, &volume, 10);
        assert!((at_low[29] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cmf_zero_span_days_contribute_zero() {
        let high = vec![10.0; 15];
        let low = vec![10.0; 15];
        let close = vec![10.0; 15];
        let volume = vec![100.0; 15];
        let out = cmf(&high, &low, &close, &volume, 10);
        assert_eq!(out[14], 0.0);
    }
}
