//! Telemetry hot-path overhead: the sharded lock-free metric handles
//! vs the pre-telemetry-plane design (one global `Mutex<BTreeMap>` per
//! metric kind, a by-name lookup per operation).
//!
//! The mutex baseline is replicated locally — byte-for-byte what the
//! registry used to do on `inc`/`observe_micros` — so the comparison
//! survives the old implementation's removal. Counter increments and
//! histogram observes are measured at 1 and 8 threads; medians land in
//! `results/BENCH_obs.json` so CI can smoke-gate the overhead without
//! re-running Criterion.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use c100_bench::{bench_env_json, write_bench_record};
use c100_obs::MetricsRegistry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Operations per measured run, split evenly across the threads.
const OPS: usize = 400_000;
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// The pre-PR8 decade bucket bounds, for the baseline's histograms.
const DECADE_BOUNDS: [u64; 8] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

struct MutexHist {
    count: u64,
    sum: u64,
    buckets: [u64; DECADE_BOUNDS.len() + 1],
}

/// What the metrics registry used to be: every operation takes one
/// global lock per metric kind and walks a by-name map.
#[derive(Default)]
struct MutexRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, MutexHist>>,
}

impl MutexRegistry {
    fn inc(&self, name: &str) {
        let mut counters = self.counters.lock().unwrap();
        *counters.entry(name.to_string()).or_insert(0) += 1;
    }

    fn observe_micros(&self, name: &str, micros: u64) {
        let mut histograms = self.histograms.lock().unwrap();
        let hist = histograms.entry(name.to_string()).or_insert(MutexHist {
            count: 0,
            sum: 0,
            buckets: [0; DECADE_BOUNDS.len() + 1],
        });
        hist.count += 1;
        hist.sum = hist.sum.saturating_add(micros);
        let idx = DECADE_BOUNDS
            .iter()
            .position(|&le| micros <= le)
            .unwrap_or(DECADE_BOUNDS.len());
        hist.buckets[idx] += 1;
    }
}

/// Median of five wall-clock timings of `run`, in nanoseconds per op.
fn median_ns_per_op(ops: usize, mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[2] * 1e9 / ops as f64
}

/// Runs `op(thread_index, op_index)` `OPS` times split across `threads`.
fn spread(threads: usize, op: impl Fn(usize, usize) + Sync) {
    let per_thread = OPS / threads;
    if threads == 1 {
        for i in 0..per_thread {
            op(0, i);
        }
        return;
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            s.spawn(move || {
                for i in 0..per_thread {
                    op(t, i);
                }
            });
        }
    });
}

struct Row {
    op: &'static str,
    threads: usize,
    mutex_ns: f64,
    sharded_ns: f64,
}

fn measure() -> Vec<Row> {
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        // Counter increments.
        let mutex_reg = MutexRegistry::default();
        let mutex_ns = median_ns_per_op(OPS, || {
            spread(threads, |_, _| mutex_reg.inc("bench.counter"));
        });
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("bench.counter");
        let sharded_ns = median_ns_per_op(OPS, || {
            spread(threads, |_, _| counter.inc());
        });
        rows.push(Row {
            op: "counter_inc",
            threads,
            mutex_ns,
            sharded_ns,
        });

        // Histogram observes with a spread of magnitudes, so both paths
        // exercise their bucket search rather than one hot branch.
        let mutex_reg = MutexRegistry::default();
        let mutex_ns = median_ns_per_op(OPS, || {
            spread(threads, |_, i| {
                mutex_reg.observe_micros("bench.hist", (i as u64 % 20) * 37 + 1);
            });
        });
        let registry = Arc::new(MetricsRegistry::new());
        let hist = registry.histogram("bench.hist");
        let sharded_ns = median_ns_per_op(OPS, || {
            spread(threads, |_, i| {
                hist.observe_micros((i as u64 % 20) * 37 + 1);
            });
        });
        rows.push(Row {
            op: "histogram_observe",
            threads,
            mutex_ns,
            sharded_ns,
        });
    }
    rows
}

fn record(rows: &[Row]) {
    let mut out = format!(
        "{{\"bench\":\"obs_overhead\",\"env\":{},\"ops\":{OPS},\"results\":[",
        bench_env_json()
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"op\":\"{}\",\"threads\":{},\"mutex_ns_per_op\":{:.1},\
             \"sharded_ns_per_op\":{:.1},\"speedup\":{:.2}}}",
            row.op,
            row.threads,
            row.mutex_ns,
            row.sharded_ns,
            row.mutex_ns / row.sharded_ns.max(1e-9)
        ));
    }
    out.push_str("]}\n");

    let path = write_bench_record("BENCH_obs.json", &out);
    eprintln!("recorded telemetry overhead -> {}", path.display());
}

fn bench_obs_overhead(c: &mut Criterion) {
    let rows = measure();
    for row in &rows {
        eprintln!(
            "{} x{}: mutex {:.0} ns/op, sharded {:.0} ns/op ({:.1}x)",
            row.op,
            row.threads,
            row.mutex_ns,
            row.sharded_ns,
            row.mutex_ns / row.sharded_ns.max(1e-9)
        );
    }
    record(&rows);

    // Criterion single-op views of the same paths (per-call cost).
    let registry = Arc::new(MetricsRegistry::new());
    let counter = registry.counter("bench.counter");
    let hist = registry.histogram("bench.hist");
    let mutex_reg = MutexRegistry::default();

    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("counter_inc_sharded", |b| b.iter(|| counter.inc()));
    group.bench_function("counter_inc_mutex", |b| {
        b.iter(|| mutex_reg.inc("bench.counter"))
    });
    group.bench_function("histogram_observe_sharded", |b| {
        b.iter(|| hist.observe_micros(black_box(1234)))
    });
    group.bench_function("histogram_observe_mutex", |b| {
        b.iter(|| mutex_reg.observe_micros("bench.hist", black_box(1234)))
    });
    // The facade's by-name path (read-lock + map walk) for contrast.
    group.bench_function("counter_inc_by_name", |b| {
        b.iter(|| registry.inc("bench.counter"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_obs_overhead
}
criterion_main!(benches);
