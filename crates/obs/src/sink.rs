//! Shipped observer sinks: null, stderr, JSONL, in-memory recording and
//! fan-out composition.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::{fmt_micros, Event, Stage};
use crate::RunObserver;

/// The do-nothing observer. This is the default everywhere, and the
/// pipeline bench asserts it adds negligible overhead over no
/// instrumentation at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn on_event(&self, _event: &Event) {}
}

/// The shared silent observer, for contexts that need a `&'static dyn`.
pub static NULL_OBSERVER: NullObserver = NullObserver;

/// Replicates the progress lines the pipeline used to hard-code with
/// `eprintln!`: one stage-breakdown line per scenario plus a diversity
/// timing line, now driven by events instead of being baked into library
/// code.
#[derive(Debug, Default)]
pub struct StderrObserver {
    state: Mutex<HashMap<String, ScenarioProgress>>,
}

#[derive(Debug, Default, Clone)]
struct ScenarioProgress {
    stage_micros: HashMap<Stage, u64>,
    fra_iterations: usize,
}

impl StderrObserver {
    /// A fresh stderr progress printer.
    pub fn new() -> StderrObserver {
        StderrObserver::default()
    }

    /// The line (if any) this event should print. Split out from
    /// [`RunObserver::on_event`] so tests can assert on output without
    /// capturing stderr.
    fn line_for(&self, event: &Event) -> Option<String> {
        let mut state = self.state.lock().expect("stderr observer poisoned");
        match event {
            Event::FraIteration { scenario, .. } => {
                state.entry(scenario.clone()).or_default().fra_iterations += 1;
                None
            }
            Event::StageFinished {
                scenario,
                stage: Stage::Diversity,
                micros,
            } => Some(format!(
                "#   scenario {scenario}: diversity {}",
                fmt_micros(*micros)
            )),
            Event::StageFinished {
                scenario,
                stage,
                micros,
            } => {
                state
                    .entry(scenario.clone())
                    .or_default()
                    .stage_micros
                    .insert(*stage, *micros);
                None
            }
            Event::ScenarioFinished {
                scenario, micros, ..
            } => {
                let progress = state.remove(scenario).unwrap_or_default();
                let stage =
                    |s: Stage| fmt_micros(progress.stage_micros.get(&s).copied().unwrap_or(0));
                Some(format!(
                    "#     {scenario} stages: tune {}, fra {} ({} iters), shap {} (total {})",
                    stage(Stage::Tune),
                    stage(Stage::Fra),
                    progress.fra_iterations,
                    stage(Stage::Shap),
                    fmt_micros(*micros)
                ))
            }
            Event::RunFinished { scenarios, micros } => Some(format!(
                "#   {scenarios}-scenario evaluation finished in {}",
                fmt_micros(*micros)
            )),
            _ => None,
        }
    }
}

impl RunObserver for StderrObserver {
    fn on_event(&self, event: &Event) {
        if let Some(mut line) = self.line_for(event) {
            // One locked write of the whole line: scenarios finishing
            // concurrently must not interleave their output.
            line.push('\n');
            let stderr = std::io::stderr();
            let mut handle = stderr.lock();
            let _ = handle.write_all(line.as_bytes());
        }
    }
}

/// Appends every event as one JSON object per line to any writer.
///
/// Write errors do not panic the pipeline: the first error is retained
/// and surfaced by [`JsonlObserver::flush`], and the sticky
/// [`JsonlObserver::poisoned`] flag reports that events were dropped —
/// a poisoned log is incomplete even if a later `flush` succeeds. The
/// writer is flushed on drop, so a log handed to a [`Fanout`] (which
/// keeps it behind an `Arc` until the end of the run) still reaches
/// disk without an explicit final flush.
#[derive(Debug)]
pub struct JsonlObserver<W: Write + Send> {
    inner: Mutex<JsonlInner<W>>,
    poisoned: std::sync::atomic::AtomicBool,
}

#[derive(Debug)]
struct JsonlInner<W: Write + Send> {
    /// `None` only after [`JsonlObserver::into_inner`] took the writer.
    writer: Option<W>,
    error: Option<std::io::Error>,
}

impl JsonlObserver<BufWriter<File>> {
    /// Creates (truncating) a JSONL log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlObserver::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlObserver<W> {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(writer: W) -> Self {
        JsonlObserver {
            inner: Mutex::new(JsonlInner {
                writer: Some(writer),
                error: None,
            }),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether any write has ever failed. Sticky: once poisoned, the
    /// log is missing events and should not be trusted, even if a later
    /// [`JsonlObserver::flush`] returns `Ok`.
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn poison(&self, inner: &mut JsonlInner<W>, error: std::io::Error) {
        if inner.error.is_none() {
            inner.error = Some(error);
        }
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Flushes the underlying writer, surfacing any write error seen so
    /// far (the first pending error is returned once; the flag reported
    /// by [`JsonlObserver::poisoned`] stays set).
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("jsonl observer poisoned");
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        match inner.writer.as_mut().map(Write::flush).unwrap_or(Ok(())) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned
                    .store(true, std::sync::atomic::Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Unwraps the underlying writer (after flushing as far as possible).
    pub fn into_inner(self) -> W {
        // Take the writer out; the `Drop` flush then sees `None` and
        // does nothing.
        let mut writer = self
            .inner
            .lock()
            .expect("jsonl observer poisoned")
            .writer
            .take()
            .expect("writer already taken");
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> RunObserver for JsonlObserver<W> {
    fn on_event(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("jsonl observer poisoned");
        if inner.error.is_some() {
            return;
        }
        let mut line = event.to_json_line();
        line.push('\n');
        let result = inner
            .writer
            .as_mut()
            .map(|writer| writer.write_all(line.as_bytes()));
        if let Some(Err(e)) = result {
            self.poison(&mut inner, e);
        }
    }
}

impl<W: Write + Send> Drop for JsonlObserver<W> {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            if let Some(writer) = inner.writer.as_mut() {
                let _ = writer.flush();
            }
        }
    }
}

/// Captures every event in memory, in arrival order. Intended for tests
/// and for tools that post-process a run programmatically.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Mutex<Vec<Event>>,
}

impl RecordingObserver {
    /// A fresh, empty recorder.
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("recording observer poisoned")
            .clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("recording observer poisoned"))
    }
}

impl RunObserver for RecordingObserver {
    fn on_event(&self, event: &Event) {
        self.events
            .lock()
            .expect("recording observer poisoned")
            .push(event.clone());
    }
}

/// Broadcasts every event to several sinks, in registration order.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Arc<dyn RunObserver>>,
}

impl Fanout {
    /// An empty fan-out (equivalent to [`NullObserver`]).
    pub fn new() -> Fanout {
        Fanout::default()
    }

    /// Adds a sink; builder-style.
    pub fn with(mut self, sink: Arc<dyn RunObserver>) -> Fanout {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Arc<dyn RunObserver>) {
        self.sinks.push(sink);
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl RunObserver for Fanout {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_finished(scenario: &str, stage: Stage, micros: u64) -> Event {
        Event::StageFinished {
            scenario: scenario.into(),
            stage,
            micros,
        }
    }

    #[test]
    fn jsonl_observer_writes_parseable_lines() {
        let obs = JsonlObserver::new(Vec::new());
        let events = vec![
            Event::RunStarted { scenarios: 2 },
            stage_finished("2019_7", Stage::Tune, 1234),
            Event::RunFinished {
                scenarios: 2,
                micros: 99,
            },
        ];
        for e in &events {
            obs.on_event(e);
        }
        obs.flush().unwrap();
        let bytes = obs.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_json_line(l).unwrap())
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn recording_observer_preserves_order_and_drains() {
        let rec = RecordingObserver::new();
        rec.on_event(&Event::RunStarted { scenarios: 1 });
        rec.on_event(&stage_finished("x", Stage::Fra, 5));
        assert_eq!(rec.events().len(), 2);
        let drained = rec.take();
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained[0], Event::RunStarted { scenarios: 1 }));
        assert!(rec.events().is_empty());
    }

    #[test]
    fn fanout_broadcasts_to_all_sinks() {
        let a = Arc::new(RecordingObserver::new());
        let b = Arc::new(RecordingObserver::new());
        let fan = Fanout::new()
            .with(a.clone() as Arc<dyn RunObserver>)
            .with(b.clone() as Arc<dyn RunObserver>);
        assert_eq!(fan.len(), 2);
        fan.on_event(&Event::RunStarted { scenarios: 3 });
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn stderr_observer_formats_scenario_summary() {
        let obs = StderrObserver::new();
        assert!(obs
            .line_for(&Event::StageStarted {
                scenario: "2019_7".into(),
                stage: Stage::Tune,
            })
            .is_none());
        assert!(obs
            .line_for(&stage_finished("2019_7", Stage::Tune, 1_200_000))
            .is_none());
        assert!(obs
            .line_for(&stage_finished("2019_7", Stage::Fra, 3_400_000))
            .is_none());
        for i in 0..5 {
            let none = obs.line_for(&Event::FraIteration {
                scenario: "2019_7".into(),
                iteration: i,
                n_before: 200,
                n_removed: 10,
                corr_threshold: 0.5,
                stall_break: false,
            });
            assert!(none.is_none());
        }
        assert!(obs
            .line_for(&stage_finished("2019_7", Stage::Shap, 800_000))
            .is_none());
        let line = obs
            .line_for(&Event::ScenarioFinished {
                scenario: "2019_7".into(),
                n_candidates: 214,
                fra_survivors: 100,
                fra_iterations: 5,
                shap_overlap: 78,
                final_features: 112,
                micros: 6_000_000,
            })
            .unwrap();
        assert_eq!(
            line,
            "#     2019_7 stages: tune 1.20s, fra 3.40s (5 iters), shap 800.0ms (total 6.00s)"
        );
        // State for the scenario is dropped after the summary line.
        assert!(obs.state.lock().unwrap().is_empty());

        let diversity = obs
            .line_for(&stage_finished("2019_7", Stage::Diversity, 2_500_000))
            .unwrap();
        assert_eq!(diversity, "#   scenario 2019_7: diversity 2.50s");
    }

    #[test]
    fn jsonl_observer_retains_first_error() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let obs = JsonlObserver::new(FailingWriter);
        assert!(!obs.poisoned());
        obs.on_event(&Event::RunStarted { scenarios: 1 });
        obs.on_event(&Event::RunFinished {
            scenarios: 1,
            micros: 1,
        });
        let err = obs.flush().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        // After surfacing, flush succeeds again — but the poisoned flag
        // stays set: the log is missing events.
        obs.flush().unwrap();
        assert!(obs.poisoned());
    }

    #[test]
    fn jsonl_observer_flushes_on_drop() {
        use std::sync::atomic::{AtomicBool, Ordering};

        static FLUSHED: AtomicBool = AtomicBool::new(false);
        struct FlushProbe;
        impl Write for FlushProbe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                FLUSHED.store(true, Ordering::SeqCst);
                Ok(())
            }
        }

        FLUSHED.store(false, Ordering::SeqCst);
        let obs = JsonlObserver::new(FlushProbe);
        obs.on_event(&Event::RunStarted { scenarios: 1 });
        drop(obs);
        assert!(FLUSHED.load(Ordering::SeqCst), "drop must flush");

        // End-to-end: a buffered file log reaches disk without an
        // explicit flush call.
        let dir = std::env::temp_dir().join(format!("c100-jsonl-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        {
            let obs = JsonlObserver::create(&path).unwrap();
            obs.on_event(&Event::RunStarted { scenarios: 7 });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("run_started"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_observer_into_inner_still_returns_writer() {
        let obs = JsonlObserver::new(Vec::new());
        obs.on_event(&Event::RunStarted { scenarios: 2 });
        let bytes = obs.into_inner();
        assert!(!bytes.is_empty());
    }
}
