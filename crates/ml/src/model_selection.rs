//! K-fold cross-validation and exhaustive grid search.
//!
//! The paper fine-tunes RF and XGB "using 5-fold cross-validation grid
//! search with minimum mean squared error as the objective" for each of the
//! 10 scenarios. This module reproduces that protocol: contiguous k-fold
//! splits (sklearn's `KFold(shuffle=False)` default, appropriate for time
//! series), exhaustive sweep over a parameter grid, selection by mean CV
//! MSE, then a refit on the full training data.

use c100_obs::{Event, NullObserver, RunObserver, TraceCtx};
use rayon::prelude::*;

use crate::data::{BinnedMatrix, Matrix};
use crate::metrics::mse;
use crate::{Estimator, MlError, Regressor, Result};

/// One fold's materialized train/test slices, with the training rows
/// binned once when the estimator family trains on histograms — every
/// grid candidate evaluated on this fold then shares the same
/// [`BinnedMatrix`] instead of re-binning per (candidate, fold) pair.
struct FoldData {
    x_train: Matrix,
    y_train: Vec<f64>,
    x_test: Matrix,
    y_test: Vec<f64>,
    binned: Option<BinnedMatrix>,
}

/// Materializes every fold (in parallel), binning each fold's training
/// rows when `bins` is set.
fn prepare_folds(
    x: &Matrix,
    y: &[f64],
    folds: &[(Vec<usize>, Vec<usize>)],
    bins: Option<usize>,
) -> Result<Vec<FoldData>> {
    folds
        .par_iter()
        .map(|(train, test)| {
            let x_train = x.take_rows(train);
            let y_train: Vec<f64> = train.iter().map(|&i| y[i]).collect();
            let x_test = x.take_rows(test);
            let y_test: Vec<f64> = test.iter().map(|&i| y[i]).collect();
            let binned = match bins {
                Some(b) => Some(BinnedMatrix::from_matrix(&x_train, b)?),
                None => None,
            };
            Ok(FoldData {
                x_train,
                y_train,
                x_test,
                y_test,
                binned,
            })
        })
        .collect()
}

/// Contiguous k-fold index splits over `n` rows.
///
/// The first `n % k` folds get one extra row, like sklearn. Returned as
/// `(train_indices, test_indices)` per fold.
pub fn kfold_indices(n: usize, k: usize) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 {
        return Err(MlError::BadConfig("k must be >= 2".into()));
    }
    if n < k {
        return Err(MlError::BadInput(format!("{n} rows cannot form {k} folds")));
    }
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for fold in 0..k {
        let size = base + usize::from(fold < extra);
        let test: Vec<usize> = (start..start + size).collect();
        let train: Vec<usize> = (0..start).chain(start + size..n).collect();
        folds.push((train, test));
        start += size;
    }
    Ok(folds)
}

/// Mean CV MSE of `estimator` over `k` folds. Fold models use seeds
/// derived from `seed` so the score is deterministic.
pub fn cross_val_mse<E: Estimator>(
    estimator: &E,
    x: &Matrix,
    y: &[f64],
    k: usize,
    seed: u64,
) -> Result<f64> {
    let folds = kfold_indices(x.n_rows(), k)?;
    let fold_data = prepare_folds(x, y, &folds, estimator.histogram_bins())?;
    let scores: Result<Vec<f64>> = fold_data
        .par_iter()
        .enumerate()
        .map(|(fold_id, fd)| {
            let model = estimator.fit_model_binned_traced(
                &fd.x_train,
                &fd.y_train,
                fd.binned.as_ref(),
                seed ^ (fold_id as u64) << 32,
                TraceCtx::disabled(),
            )?;
            Ok(mse(&fd.y_test, &model.predict(&fd.x_test)))
        })
        .collect();
    let scores = scores?;
    Ok(scores.iter().sum::<f64>() / scores.len() as f64)
}

/// Result of a grid search: the winning configuration, its CV score, the
/// refit model, and the full leaderboard.
pub struct GridSearchResult<E: Estimator> {
    /// Configuration with the lowest mean CV MSE.
    pub best_config: E,
    /// Its mean CV MSE.
    pub best_score: f64,
    /// The winning configuration refit on all the data.
    pub best_model: E::Model,
    /// `(config index, mean CV MSE)` for every candidate, in input order.
    pub scores: Vec<f64>,
}

/// Exhaustive grid search over `candidates`, selecting by mean CV MSE and
/// refitting the winner on the full data.
///
/// Ties break toward the earlier candidate, so ordering the grid from
/// simplest to most complex yields the simplest adequate model.
///
/// Silent convenience wrapper around [`grid_search_observed`].
pub fn grid_search<E: Estimator>(
    candidates: &[E],
    x: &Matrix,
    y: &[f64],
    k: usize,
    seed: u64,
) -> Result<GridSearchResult<E>> {
    grid_search_observed(candidates, x, y, k, seed, "", &NullObserver)
}

/// [`grid_search`] with telemetry: emits one
/// [`Event::GridCandidateScored`] per candidate (in grid order, after all
/// CV folds complete) and a final [`Event::GridSearchFinished`], all
/// tagged with the caller-supplied `scope` label (e.g. `2019_7:rf`).
pub fn grid_search_observed<E: Estimator>(
    candidates: &[E],
    x: &Matrix,
    y: &[f64],
    k: usize,
    seed: u64,
    scope: &str,
    observer: &dyn RunObserver,
) -> Result<GridSearchResult<E>> {
    grid_search_traced(
        candidates,
        x,
        y,
        k,
        seed,
        scope,
        observer,
        TraceCtx::disabled(),
    )
}

/// [`grid_search_observed`] with span tracing: every (candidate, fold)
/// evaluation records a `grid_fold` span on its rayon worker and the
/// winner's refit records a `grid_refit` span (with per-tree children when
/// the estimator is a forest). Scores and the refit model are identical
/// to the untraced path.
#[allow(clippy::too_many_arguments)]
pub fn grid_search_traced<E: Estimator>(
    candidates: &[E],
    x: &Matrix,
    y: &[f64],
    k: usize,
    seed: u64,
    scope: &str,
    observer: &dyn RunObserver,
    trace: TraceCtx<'_>,
) -> Result<GridSearchResult<E>> {
    if candidates.is_empty() {
        return Err(MlError::BadConfig("empty candidate grid".into()));
    }
    // Evaluate every (candidate, fold) pair in one flat parallel sweep —
    // grids × folds parallelism beats nesting fold-parallel runs inside a
    // serial candidate loop. Folds are materialized (and binned) once up
    // front: with a C-candidate grid each fold's BinnedMatrix is reused C
    // times instead of rebuilt per pair.
    let folds = kfold_indices(x.n_rows(), k)?;
    let bins = candidates.iter().find_map(|c| c.histogram_bins());
    let binning_span = trace.span("train_binning");
    let fold_data = prepare_folds(x, y, &folds, bins)?;
    drop(binning_span);
    let pairs: Vec<(usize, usize)> = (0..candidates.len())
        .flat_map(|c| (0..folds.len()).map(move |f| (c, f)))
        .collect();
    let fold_scores: Result<Vec<((usize, usize), f64)>> = pairs
        .par_iter()
        .map(|&(c, f)| {
            let _fold_span = trace.span("grid_fold");
            let fd = &fold_data[f];
            let model = candidates[c].fit_model_binned_traced(
                &fd.x_train,
                &fd.y_train,
                fd.binned.as_ref(),
                seed ^ (f as u64) << 32,
                TraceCtx::disabled(),
            )?;
            Ok(((c, f), mse(&fd.y_test, &model.predict(&fd.x_test))))
        })
        .collect();
    let mut scores = vec![0.0; candidates.len()];
    for ((c, _), s) in fold_scores? {
        scores[c] += s / folds.len() as f64;
    }
    for (candidate, &cv_mse) in scores.iter().enumerate() {
        observer.on_event(&Event::GridCandidateScored {
            scope: scope.to_string(),
            candidate,
            cv_mse,
        });
    }
    let (best_idx, &best_score) = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("CV MSE is never NaN"))
        .expect("non-empty grid");
    observer.on_event(&Event::GridSearchFinished {
        scope: scope.to_string(),
        candidates: candidates.len(),
        best: best_idx,
        best_mse: best_score,
    });
    let best_config = candidates[best_idx].clone();
    let refit_span = trace.span("grid_refit");
    let best_model = best_config.fit_model_traced(x, y, seed, refit_span.ctx())?;
    drop(refit_span);
    Ok(GridSearchResult {
        best_config,
        best_score,
        best_model,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;
    use crate::gbdt::GbdtConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quadratic_data(n: usize, noise: f64, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.gen::<f64>() * 4.0 - 2.0;
            rows.push(vec![a]);
            y.push(a * a + noise * (rng.gen::<f64>() - 0.5));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn kfold_partitions_exactly() {
        let folds = kfold_indices(10, 3).unwrap();
        assert_eq!(folds.len(), 3);
        // Sizes 4, 3, 3.
        assert_eq!(folds[0].1, vec![0, 1, 2, 3]);
        assert_eq!(folds[1].1, vec![4, 5, 6]);
        assert_eq!(folds[2].1, vec![7, 8, 9]);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 10);
            for t in test {
                assert!(!train.contains(t));
            }
        }
        // Every row appears in exactly one test fold.
        let mut all_test: Vec<usize> = folds.iter().flat_map(|f| f.1.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_rejects_degenerate_requests() {
        assert!(kfold_indices(10, 1).is_err());
        assert!(kfold_indices(3, 5).is_err());
    }

    #[test]
    fn cross_val_mse_is_positive_and_deterministic() {
        let (x, y) = quadratic_data(120, 0.1, 1);
        let cfg = RandomForestConfig {
            n_estimators: 10,
            ..Default::default()
        };
        let a = cross_val_mse(&cfg, &x, &y, 5, 7).unwrap();
        let b = cross_val_mse(&cfg, &x, &y, 5, 7).unwrap();
        assert_eq!(a, b);
        assert!(a > 0.0 && a.is_finite());
    }

    #[test]
    fn grid_search_prefers_adequate_depth() {
        let (x, y) = quadratic_data(200, 0.05, 3);
        let grid: Vec<RandomForestConfig> = vec![
            RandomForestConfig {
                n_estimators: 20,
                max_depth: Some(1),
                ..Default::default()
            },
            RandomForestConfig {
                n_estimators: 20,
                max_depth: Some(6),
                ..Default::default()
            },
        ];
        let result = grid_search(&grid, &x, &y, 5, 0).unwrap();
        assert_eq!(result.best_config.max_depth, Some(6));
        assert_eq!(result.scores.len(), 2);
        assert!(result.scores[1] < result.scores[0]);
        assert!((result.best_score - result.scores[1]).abs() < 1e-12);
    }

    #[test]
    fn grid_search_works_for_gbdt_too() {
        let (x, y) = quadratic_data(150, 0.05, 5);
        let grid: Vec<GbdtConfig> = vec![
            GbdtConfig {
                n_estimators: 5,
                max_depth: 2,
                ..Default::default()
            },
            GbdtConfig {
                n_estimators: 50,
                max_depth: 3,
                ..Default::default()
            },
        ];
        let result = grid_search(&grid, &x, &y, 4, 0).unwrap();
        assert_eq!(result.best_config.n_estimators, 50);
    }

    #[test]
    fn observed_grid_search_emits_candidate_scores_then_summary() {
        use c100_obs::RecordingObserver;
        let (x, y) = quadratic_data(80, 0.1, 11);
        let grid: Vec<RandomForestConfig> = vec![
            RandomForestConfig {
                n_estimators: 5,
                ..Default::default()
            },
            RandomForestConfig {
                n_estimators: 10,
                ..Default::default()
            },
        ];
        let rec = RecordingObserver::new();
        let result = grid_search_observed(&grid, &x, &y, 4, 0, "test:rf", &rec).unwrap();
        let events = rec.events();
        assert_eq!(events.len(), 3);
        for (i, event) in events.iter().take(2).enumerate() {
            match event {
                Event::GridCandidateScored {
                    scope,
                    candidate,
                    cv_mse,
                } => {
                    assert_eq!(scope, "test:rf");
                    assert_eq!(*candidate, i);
                    assert!((cv_mse - result.scores[i]).abs() < 1e-12);
                }
                other => panic!("expected candidate score, got {other:?}"),
            }
        }
        match &events[2] {
            Event::GridSearchFinished {
                scope,
                candidates,
                best,
                best_mse,
            } => {
                assert_eq!(scope, "test:rf");
                assert_eq!(*candidates, 2);
                assert!((best_mse - result.best_score).abs() < 1e-12);
                assert!((result.scores[*best] - result.best_score).abs() < 1e-12);
            }
            other => panic!("expected grid summary, got {other:?}"),
        }
    }

    #[test]
    fn traced_grid_search_matches_untraced_and_records_spans() {
        let (x, y) = quadratic_data(80, 0.1, 13);
        let grid: Vec<RandomForestConfig> = vec![
            RandomForestConfig {
                n_estimators: 4,
                ..Default::default()
            },
            RandomForestConfig {
                n_estimators: 8,
                ..Default::default()
            },
        ];
        let plain = grid_search(&grid, &x, &y, 4, 0).unwrap();

        let tracer = c100_obs::Tracer::new();
        let root = tracer.span("test", "tune");
        let traced =
            grid_search_traced(&grid, &x, &y, 4, 0, "test:rf", &NullObserver, root.ctx()).unwrap();
        drop(root);
        assert_eq!(plain.scores, traced.scores);
        assert_eq!(plain.best_score, traced.best_score);

        let spans = tracer.snapshot();
        // 2 candidates x 4 folds, plus one refit of the winner whose
        // forest fit nests beneath it.
        assert_eq!(spans.iter().filter(|s| s.name == "grid_fold").count(), 8);
        let refit = spans.iter().find(|s| s.name == "grid_refit").unwrap();
        assert!(spans
            .iter()
            .any(|s| s.name == "forest_fit" && s.parent == Some(refit.id)));
    }

    #[test]
    fn grid_search_rejects_empty_grid() {
        let (x, y) = quadratic_data(50, 0.1, 9);
        let grid: Vec<RandomForestConfig> = vec![];
        assert!(grid_search(&grid, &x, &y, 5, 0).is_err());
    }
}
