//! Streaming-loop costs: O(1) incremental indicator updates vs a naive
//! per-tick batch recompute, and the rollover pause (cold fit vs
//! warm-started refit). Besides the Criterion timings, the medians are
//! recorded to `results/BENCH_stream.json` so later PRs can regress-gate
//! the streaming path without re-running Criterion.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use c100_bench::{bench_env_json, write_bench_record};
use c100_core::pipeline::ScenarioSpec;
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_indicators::momentum::rsi;
use c100_indicators::moving::{ema, sma};
use c100_indicators::volatility::atr;
use c100_ml::gbdt::GbdtConfig;
use c100_store::ArtifactStore;
use c100_stream::{
    RolloverController, RolloverTrigger, StreamIndicators, SynthTickSource, FEATURE_NAMES,
};
use c100_synth::btc::BtcTick;
use c100_synth::SynthConfig;
use c100_timeseries::AppendFrame;

const TICKS: usize = 500;
const RESYNC_EVERY: usize = 64;

/// Median of five manual timings, independent of Criterion's own
/// sampling (the recorded JSON must not depend on sampler settings).
fn median_secs(mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[2]
}

fn ticks(seed: u64, n: usize) -> Vec<BtcTick> {
    let mut source = SynthTickSource::new(&SynthConfig::small(seed));
    let n = n.min(source.len());
    (0..n).map(|_| source.next_tick().unwrap()).collect()
}

/// The streaming path: fold every tick into incremental state.
fn run_incremental(ticks: &[BtcTick]) -> f64 {
    let mut state = StreamIndicators::new(RESYNC_EVERY);
    let mut acc = 0.0;
    for tick in ticks {
        let row = state.update(tick.high, tick.low, tick.close, tick.volume);
        acc += row.iter().filter(|v| v.is_finite()).sum::<f64>();
    }
    acc
}

/// The naive alternative: at each tick, recompute every batch indicator
/// over the full prefix and keep the last value — O(t) per tick, O(n²)
/// over the stream.
fn run_batch_recompute(ticks: &[BtcTick]) -> f64 {
    let mut high = Vec::with_capacity(ticks.len());
    let mut low = Vec::with_capacity(ticks.len());
    let mut close = Vec::with_capacity(ticks.len());
    let mut volume = Vec::with_capacity(ticks.len());
    let mut acc = 0.0;
    for tick in ticks {
        high.push(tick.high);
        low.push(tick.low);
        close.push(tick.close);
        volume.push(tick.volume);
        let row = [
            *sma(&close, 7).last().unwrap(),
            *sma(&close, 30).last().unwrap(),
            *ema(&close, 14).last().unwrap(),
            *rsi(&close, 14).last().unwrap(),
            *atr(&high, &low, &close, 14).last().unwrap(),
            *sma(&volume, 7).last().unwrap(),
        ];
        acc += row.iter().filter(|v| v.is_finite()).sum::<f64>();
    }
    acc
}

/// Cold fit and warm refit pauses over a stream-shaped history.
fn rollover_pauses(ticks: &[BtcTick]) -> (f64, f64) {
    let mut state = StreamIndicators::new(RESYNC_EVERY);
    let mut history = AppendFrame::new(&FEATURE_NAMES);
    let mut closes = Vec::with_capacity(ticks.len());
    for tick in ticks {
        let row = state.update(tick.high, tick.low, tick.close, tick.volume);
        history.push_row(tick.date, &row).unwrap();
        closes.push(tick.close);
    }

    let dir = std::env::temp_dir().join(format!("c100_bench_stream_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    let config = GbdtConfig {
        n_estimators: 25,
        learning_rate: 0.1,
        max_depth: 3,
        ..Default::default()
    };
    let store = ArtifactStore::open(&dir).unwrap();
    let mut controller =
        RolloverController::new(spec, Profile::fast().with_seed(11), config, store);

    let cold = controller
        .roll(&history, &closes, 29, RolloverTrigger::Initial)
        .unwrap();
    let warm = controller
        .roll(&history, &closes, 29, RolloverTrigger::Scheduled)
        .unwrap();
    assert!(!cold.warm && warm.warm);
    std::fs::remove_dir_all(&dir).ok();
    (cold.pause.as_secs_f64(), warm.pause.as_secs_f64())
}

fn bench_stream(c: &mut Criterion) {
    let ticks = ticks(11, TICKS);
    let n = ticks.len();

    // Sanity: the two paths must see the same stream.
    let _ = run_incremental(&ticks);
    let _ = run_batch_recompute(&ticks);

    let incremental_secs = median_secs(|| {
        run_incremental(&ticks);
    });
    let batch_secs = median_secs(|| {
        run_batch_recompute(&ticks);
    });
    let (cold_roll_secs, warm_roll_secs) = rollover_pauses(&ticks);

    let env = bench_env_json();
    let recorded = format!(
        "{{\"bench\":\"stream_throughput\",\"env\":{env},\"results\":[{{\"ticks\":{n},\
         \"incremental_median_secs\":{incremental_secs:.6},\
         \"batch_recompute_median_secs\":{batch_secs:.6},\
         \"speedup\":{:.2},\
         \"incremental_ticks_per_sec\":{:.0},\
         \"cold_roll_secs\":{cold_roll_secs:.6},\
         \"warm_roll_secs\":{warm_roll_secs:.6}}}]}}\n",
        batch_secs / incremental_secs.max(1e-12),
        n as f64 / incremental_secs.max(1e-12)
    );

    let mut group = c.benchmark_group("stream_throughput");
    group.bench_function(format!("incremental_{n}_ticks"), |b| {
        b.iter(|| run_incremental(&ticks))
    });
    group.bench_function(format!("batch_recompute_{n}_ticks"), |b| {
        b.iter(|| run_batch_recompute(&ticks))
    });
    group.finish();

    let path = write_bench_record("BENCH_stream.json", &recorded);
    eprintln!("recorded streaming comparison -> {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_stream
}
criterion_main!(benches);
